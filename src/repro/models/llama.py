"""Pure-NumPy Llama inference model with pluggable quantized execution.

This is the substrate every quantization method in the repo plugs into:

- Each dense projection is executed through a :class:`LinearImpl`.  The
  default :class:`FloatLinear` is the FP16 baseline; Atom and the baselines
  replace these with quantized implementations (dynamic activation
  quantization + integer GEMM) via :meth:`LlamaModel.replace_linears`.
- The KV-cache passes through a :class:`KVCodec`.  The default is identity;
  Atom's asymmetric per-head low-bit codec lives in
  :mod:`repro.core.kv_quant`.
- KV *storage* is pluggable via ``kv_cache_factory``: any object honouring
  the :class:`KVCache` protocol (``append(k, v) -> (k_view, v_view)``) can
  back the per-layer incremental cache.  The default is the dense
  preallocated :class:`KVCache`; the serving engine's numeric backend
  substitutes :class:`repro.serving.paged_kv.PagedKVCache` so one model
  definition runs over both dense and paged KV with identical numerics.

The model also exposes :meth:`capture_linear_inputs`, which records the
activation matrix entering every dense site during a forward pass — this is
how calibration data is gathered for outlier identification (§5.1).  The
layer-granular variants (:meth:`embed` / :meth:`forward_layer` /
:meth:`capture_layer_inputs`) let sequential calibration resume from already
computed hidden states instead of re-running the whole model per layer.

Incremental decoding uses a preallocated, geometrically grown
:class:`KVCache` per layer (write-in-place + length cursor) and executes GQA
with broadcastable views rather than ``np.repeat``-materialized K/V; setting
``fast_path=False`` restores the concatenate-per-step reference behavior.

Quantizable sites and the activations they share (reordering is decided per
*input site*, shared by all consumers of that activation):

====================  =========================================
input site            consumer linears
====================  =========================================
``attn_in``           ``wq``, ``wk``, ``wv``
``attn_out``          ``wo``
``ffn_in``            ``w_gate``, ``w_up`` (and every expert's in MoE)
``ffn_hidden``        ``w_down`` (per expert in MoE)
====================  =========================================

The MoE router stays in FP16 — it is negligibly small, and the paper's MoE
adaptation (footnote 4) shares reorder indices across experts, which we
implement by keying reordering on the input site rather than the linear.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.models.config import ModelConfig
from repro.models.net import rope_tables

__all__ = [
    "LinearImpl",
    "FloatLinear",
    "KVCodec",
    "IdentityKVCodec",
    "KVCache",
    "LlamaModel",
    "input_site",
    "rowwise_matmul",
    "sample_token",
]

_ATTN_LINEARS = ("wq", "wk", "wv")
_FFN_LINEARS = ("w_gate", "w_up")


def input_site(linear_name: str) -> str:
    """Map a linear's full name to its shared activation-site key.

    E.g. ``layers.3.wk -> layers.3.attn_in`` and
    ``layers.2.experts.1.w_down -> layers.2.ffn_hidden``.
    """
    parts = linear_name.split(".")
    layer_prefix = ".".join(parts[:2])  # "layers.{i}"
    leaf = parts[-1]
    if leaf in _ATTN_LINEARS:
        return f"{layer_prefix}.attn_in"
    if leaf == "wo":
        return f"{layer_prefix}.attn_out"
    if leaf in _FFN_LINEARS:
        return f"{layer_prefix}.ffn_in"
    if leaf == "w_down":
        return f"{layer_prefix}.ffn_hidden"
    raise ValueError(f"{linear_name!r} is not a quantizable linear")


def rowwise_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` with each row of ``a`` contracted independently.

    One stacked ``np.matmul`` over ``(rows, 1, k) @ (k, n)`` issues a
    separate inner GEMM per row, so row ``i`` of the result is bit-identical
    to ``a[i : i + 1] @ b`` — unlike a flat 2-D GEMM, whose blocked
    accumulation order (and therefore float rounding) depends on the row
    count.  This is the primitive that makes cross-request batched decode
    batch-size-invariant: stacking B requests into one call keeps every
    request's accumulation order identical to its own B=1 execution.
    """
    return np.matmul(a[:, None, :], b)[:, 0]


class LinearImpl(abc.ABC):
    """Execution backend for one dense projection ``y = x @ W.T``."""

    @abc.abstractmethod
    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to a 2-D activation matrix ``(tokens, in_features)``."""

    def forward_rowwise(self, x: np.ndarray) -> np.ndarray:
        """Apply with per-row accumulation order (batch-size-invariant).

        Row ``i`` of the result must be bit-identical to
        ``self(x[i : i + 1])[0]`` for any number of rows.  The default
        satisfies the contract by construction (a per-row loop);
        implementations override it with a vectorized version built on
        :func:`rowwise_matmul`.
        """
        return np.concatenate([self(x[i : i + 1]) for i in range(x.shape[0])])

    @property
    @abc.abstractmethod
    def out_features(self) -> int: ...

    @property
    @abc.abstractmethod
    def in_features(self) -> int: ...


class FloatLinear(LinearImpl):
    """Full-precision (FP16-baseline) linear."""

    def __init__(self, weight: np.ndarray) -> None:
        if weight.ndim != 2:
            raise ValueError("weight must be 2-D (out, in)")
        self.weight = np.asarray(weight, dtype=np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.T

    def forward_rowwise(self, x: np.ndarray) -> np.ndarray:
        return rowwise_matmul(x, self.weight.T)

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]


class KVCodec(abc.ABC):
    """Lossy storage codec for the KV-cache.

    ``encode_decode`` models a round-trip through the quantized cache:
    the serving kernel stores low-bit codes and dequantizes on load, so
    accuracy-wise the effect is exactly quantize->dequantize.
    Input layout: ``(batch, heads, tokens, head_dim)``.
    """

    @abc.abstractmethod
    def encode_decode(self, kv: np.ndarray, kind: str) -> np.ndarray:
        """Round-trip ``kv`` through the codec; ``kind`` is ``"k"`` or ``"v"``."""

    @property
    def bits(self) -> float:
        """Storage bits per element (for memory accounting); 16 = lossless."""
        return 16.0


class IdentityKVCodec(KVCodec):
    """FP16 KV-cache (the baseline)."""

    def encode_decode(self, kv: np.ndarray, kind: str) -> np.ndarray:
        return kv


class KVCache:
    """Preallocated per-layer KV buffer: write-in-place + length cursor.

    Replaces concatenate-per-step caching (O(n^2) copying over a decode) with
    a geometrically grown buffer: appends write into spare capacity, and the
    buffer at most doubles when it runs out, so total copying over a decode
    of ``n`` tokens is O(n).  ``append`` returns zero-copy views of the live
    prefix.
    """

    __slots__ = ("k", "v", "length", "max_capacity")

    def __init__(
        self,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        *,
        capacity: int,
        max_capacity: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.max_capacity = max_capacity
        if max_capacity is not None:
            capacity = min(capacity, max_capacity)
        self.k = np.empty((batch, n_kv_heads, capacity, head_dim), dtype=np.float32)
        self.v = np.empty_like(self.k)
        self.length = 0

    @property
    def capacity(self) -> int:
        return self.k.shape[2]

    def _grow(self, need: int) -> None:
        cap = max(need, 2 * self.capacity)
        if self.max_capacity is not None:
            cap = min(max(cap, need), self.max_capacity)
        if cap < need:
            raise ValueError(
                f"KV cache needs {need} positions, max_capacity {self.max_capacity}"
            )
        k = np.empty((*self.k.shape[:2], cap, self.k.shape[3]), dtype=self.k.dtype)
        v = np.empty_like(k)
        k[:, :, : self.length] = self.k[:, :, : self.length]
        v[:, :, : self.length] = self.v[:, :, : self.length]
        self.k, self.v = k, v

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Write ``(batch, kv_heads, t, head_dim)`` steps; return live views."""
        t = k_new.shape[2]
        need = self.length + t
        if need > self.capacity:
            self._grow(need)
        self.k[:, :, self.length : need] = k_new
        self.v[:, :, self.length : need] = v_new
        self.length = need
        return self.k[:, :, :need], self.v[:, :, :need]


def sample_token(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> int:
    """Greedy (``temperature <= 0``) or softmax-sampled next token.

    Shared by :meth:`LlamaModel.generate` and the serving engine's
    :class:`~repro.serving.model_runner.ModelRunner` so both decode paths
    run the identical float operations — the foundation of the
    engine-vs-``generate`` bit-identity oracle.
    """
    if temperature <= 0.0:
        return int(np.argmax(logits))
    z = (logits / temperature).astype(np.float64)
    z -= z.max()
    p = np.exp(z) / np.exp(z).sum()
    return int(rng.choice(len(p), p=p))


class LlamaModel:
    """Inference-time Llama with pluggable quantized linears and KV codec."""

    def __init__(
        self,
        config: ModelConfig,
        weights: dict[str, np.ndarray],
        *,
        kv_codec: KVCodec | None = None,
        fast_path: bool = True,
        kv_cache_factory=None,
    ) -> None:
        self.config = config
        self.weights = {k: np.asarray(v, dtype=np.float32) for k, v in weights.items()}
        self.kv_codec = kv_codec or IdentityKVCodec()
        #: Fast-path execution toggles (preallocated KV-cache + broadcast GQA).
        #: ``False`` restores concatenate-per-step caching and materialized
        #: ``np.repeat`` GQA — the reference for equivalence tests and the
        #: "before" measurement of the perf harness.
        self.fast_path = fast_path
        #: Optional hook ``(batch, n_kv_heads, head_dim, capacity) -> cache``
        #: deciding what backs a layer's incremental KV (fast path only).
        #: ``None`` builds the dense preallocated :class:`KVCache`; the
        #: serving engine's numeric backend installs a paged factory.
        self.kv_cache_factory = kv_cache_factory
        self._cos, self._sin = rope_tables(
            config.max_seq_len, config.head_dim, config.rope_theta
        )
        self.linears: dict[str, LinearImpl] = {
            name: FloatLinear(self.weights[name]) for name in self.linear_names()
        }
        self._capture: dict[str, list[np.ndarray]] | None = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def linear_names(self) -> list[str]:
        """All quantizable dense projections, in execution order."""
        c = self.config
        names: list[str] = []
        for i in range(c.n_layers):
            pre = f"layers.{i}"
            names += [f"{pre}.wq", f"{pre}.wk", f"{pre}.wv", f"{pre}.wo"]
            if c.is_moe:
                for e in range(c.n_experts):
                    ep = f"{pre}.experts.{e}"
                    names += [f"{ep}.w_gate", f"{ep}.w_up", f"{ep}.w_down"]
            else:
                names += [f"{pre}.w_gate", f"{pre}.w_up", f"{pre}.w_down"]
        return names

    def replace_linears(self, mapping: dict[str, LinearImpl]) -> None:
        """Swap in quantized linear implementations (validated shapes)."""
        for name, impl in mapping.items():
            if name not in self.linears:
                raise KeyError(f"unknown linear {name!r}")
            old = self.linears[name]
            if (impl.in_features, impl.out_features) != (
                old.in_features,
                old.out_features,
            ):
                raise ValueError(
                    f"shape mismatch replacing {name!r}: "
                    f"({impl.in_features},{impl.out_features}) vs "
                    f"({old.in_features},{old.out_features})"
                )
            self.linears[name] = impl

    def clone(self) -> "LlamaModel":
        """Fresh FP16 model sharing (copying) the same weights."""
        return LlamaModel(
            self.config,
            self.weights,
            kv_codec=self.kv_codec,
            fast_path=self.fast_path,
        )

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def _linear(self, name: str, x2d: np.ndarray) -> np.ndarray:
        if self._capture is not None:
            self._capture.setdefault(name, []).append(x2d.copy())
        return self.linears[name](x2d)

    def _linear_rowwise(self, name: str, x2d: np.ndarray) -> np.ndarray:
        """Batch-size-invariant linear: one row per independent sequence."""
        if self._capture is not None:
            self._capture.setdefault(name, []).append(x2d.copy())
        return self.linears[name].forward_rowwise(x2d)

    @staticmethod
    def _rope_apply(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
        half = x.shape[-1] // 2
        x1, x2 = x[..., :half], x[..., half:]
        return np.concatenate([x1 * cos - x2 * sin, x2 * cos + x1 * sin], axis=-1)

    @staticmethod
    def _rms_norm(x: np.ndarray, gain: np.ndarray, eps: float) -> np.ndarray:
        ms = (x.astype(np.float64) ** 2).mean(axis=-1, keepdims=True)
        return (x / np.sqrt(ms + eps)).astype(np.float32) * gain

    def _attention(
        self,
        x: np.ndarray,
        layer: int,
        *,
        pos_offset: int,
        cache: dict | None,
        rowwise: bool = False,
    ) -> np.ndarray:
        c = self.config
        b, t, _ = x.shape
        h, kv, hd = c.n_heads, c.n_kv_heads, c.head_dim
        pre = f"layers.{layer}"
        lin = self._linear_rowwise if rowwise else self._linear
        x2d = x.reshape(b * t, c.dim)
        q = lin(f"{pre}.wq", x2d).reshape(b, t, h, hd).transpose(0, 2, 1, 3)
        k = lin(f"{pre}.wk", x2d).reshape(b, t, kv, hd).transpose(0, 2, 1, 3)
        v = lin(f"{pre}.wv", x2d).reshape(b, t, kv, hd).transpose(0, 2, 1, 3)
        cos = self._cos[pos_offset : pos_offset + t]
        sin = self._sin[pos_offset : pos_offset + t]
        q = self._rope_apply(q, cos, sin)
        k = self._rope_apply(k, cos, sin)
        # The KV-cache round-trips through the codec (quantized storage).
        k = self.kv_codec.encode_decode(k, "k").astype(np.float32)
        v = self.kv_codec.encode_decode(v, "v").astype(np.float32)
        if cache is not None:
            key = f"{pre}.kv"
            if self.fast_path:
                kv_cache = cache.get(key)
                if kv_cache is None:
                    if self.kv_cache_factory is not None:
                        kv_cache = self.kv_cache_factory(b, kv, hd, t)
                    else:
                        kv_cache = KVCache(
                            b, kv, hd, capacity=t, max_capacity=c.max_seq_len
                        )
                    cache[key] = kv_cache
                k, v = kv_cache.append(k, v)
            else:
                if key in cache:
                    k_prev, v_prev = cache[key]
                    k = np.concatenate([k_prev, k], axis=2)
                    v = np.concatenate([v_prev, v], axis=2)
                cache[key] = (k, v)
        out = self._attention_core(q, k, v, pos_offset=pos_offset, t=t, rowwise=rowwise)
        lin = self._linear_rowwise if rowwise else self._linear
        return lin(f"{pre}.wo", out.astype(np.float32)).reshape(b, t, c.dim)

    def _attention_core(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        *,
        pos_offset: int,
        t: int,
        rowwise: bool = False,
    ) -> np.ndarray:
        """Scores -> causal mask -> softmax -> context over cached K/V.

        ``q`` is ``(b, n_heads, t, head_dim)``; ``k``/``v`` are the full
        cached sequences ``(b, kv_heads, t_kv, head_dim)``.  Returns the
        pre-``wo`` context ``(b * t, n_heads * head_dim)``.  Every operation
        reduces along trailing axes only (stacked matmuls, row-wise softmax),
        so stacking independent sequences along ``b`` is bit-identical to
        running them one at a time — the batched decode path reuses this
        verbatim on per-context-length buckets of requests.

        With ``rowwise=True`` the score and context matmuls additionally
        contract each *query position* independently (an extra length-1
        stacked axis per row), so row ``i`` of a multi-token prefill is
        bit-identical to running positions ``<= i`` alone — the prefix-cache
        property: resuming prefill at token ``m`` over cached K/V reproduces
        the exact bytes of a cold full prefill.  At ``t == 1`` both forms
        issue the same single-row GEMM, so decode bytes are unchanged.
        """
        c = self.config
        b = q.shape[0]
        h, kv, hd = c.n_heads, c.n_kv_heads, c.head_dim
        grouped = kv != h and self.fast_path
        if kv != h and not self.fast_path:
            g = h // kv
            k = np.repeat(k, g, axis=1)
            v = np.repeat(v, g, axis=1)
        t_kv = k.shape[2]
        if grouped:
            # GQA without materializing repeated K/V: broadcast each KV head
            # against its group of query heads inside a batched matmul.
            g = h // kv
            qg = q.reshape(b, kv, g, t, hd)
            kt = k[:, :, None].transpose(0, 1, 2, 4, 3)
            if rowwise:
                scores = np.matmul(qg[:, :, :, :, None, :], kt[:, :, :, None, :, :])[
                    :, :, :, :, 0
                ] / np.sqrt(hd)
            else:
                scores = (qg @ kt) / np.sqrt(hd)
            scores = scores.reshape(b, h, t, t_kv)
        else:
            kt = k.transpose(0, 1, 3, 2)
            if rowwise:
                scores = np.matmul(q[:, :, :, None, :], kt[:, :, None, :, :])[
                    :, :, :, 0
                ] / np.sqrt(hd)
            else:
                scores = (q @ kt) / np.sqrt(hd)
        # Causal mask: query i (at absolute position pos_offset+i) may attend
        # to keys up to that absolute position.
        q_pos = np.arange(pos_offset, pos_offset + t)[:, None]
        k_pos = np.arange(t_kv)[None, :]
        scores = np.where(k_pos <= q_pos, scores, -np.inf)
        scores -= scores.max(axis=-1, keepdims=True)
        e = np.exp(scores)
        attn = e / e.sum(axis=-1, keepdims=True)
        if grouped:
            ag = attn.reshape(b, kv, g, t, t_kv)
            vg = v[:, :, None]
            if rowwise:
                ctx = np.matmul(ag[:, :, :, :, None, :], vg[:, :, :, None, :, :])[
                    :, :, :, :, 0
                ]
            else:
                ctx = ag @ vg
            ctx = ctx.reshape(b, h, t, hd)
        elif rowwise:
            ctx = np.matmul(attn[:, :, :, None, :], v[:, :, None, :, :])[:, :, :, 0]
        else:
            ctx = attn @ v
        return ctx.transpose(0, 2, 1, 3).reshape(b * t, h * hd)

    def _attention_batch(
        self,
        x: np.ndarray,
        layer: int,
        positions: np.ndarray,
        caches: list[dict],
    ) -> np.ndarray:
        """Fused decode attention for B independent single-token sequences.

        ``x`` is ``(B, 1, dim)`` — one decode token per request — with
        request ``j`` at absolute position ``positions[j]`` and its
        incremental KV in ``caches[j]``.  QKV/output projections run as one
        row-wise batched call each; RoPE broadcasts per-request tables; cache
        appends go through :meth:`_append_kv_batch` (vectorized over a shared
        paged store when possible); and attention itself runs
        :meth:`_attention_core` per (context length, position) bucket, since
        rows of equal shape stack bit-identically along the batch axis.
        """
        c = self.config
        b = x.shape[0]
        h, kv, hd = c.n_heads, c.n_kv_heads, c.head_dim
        pre = f"layers.{layer}"
        x2d = x.reshape(b, c.dim)
        q = self._linear_rowwise(f"{pre}.wq", x2d).reshape(b, 1, h, hd).transpose(0, 2, 1, 3)
        k = self._linear_rowwise(f"{pre}.wk", x2d).reshape(b, 1, kv, hd).transpose(0, 2, 1, 3)
        v = self._linear_rowwise(f"{pre}.wv", x2d).reshape(b, 1, kv, hd).transpose(0, 2, 1, 3)
        # Per-request RoPE tables, broadcast over (heads, t=1) like the
        # sequential path's (t, hd/2) tables broadcast over (b, heads).
        cos = self._cos[positions][:, None, None, :]
        sin = self._sin[positions][:, None, None, :]
        q = self._rope_apply(q, cos, sin)
        k = self._rope_apply(k, cos, sin)
        k = self.kv_codec.encode_decode(k, "k").astype(np.float32)
        v = self.kv_codec.encode_decode(v, "v").astype(np.float32)
        key = f"{pre}.kv"
        kv_caches = []
        for cache in caches:
            kv_cache = cache.get(key)
            if kv_cache is None:
                if self.kv_cache_factory is not None:
                    kv_cache = self.kv_cache_factory(1, kv, hd, 1)
                else:
                    kv_cache = KVCache(
                        1, kv, hd, capacity=1, max_capacity=c.max_seq_len
                    )
                cache[key] = kv_cache
            kv_caches.append(kv_cache)
        gathered = self._append_kv_batch(kv_caches, k, v)
        # Ragged attention: bucket requests by (context length, position).
        # Within a bucket every operand shape and mask is identical, so
        # _attention_core stacks the rows bit-identically; bucket iteration
        # order is first-occurrence order, and results scatter back into the
        # original row order.
        buckets: dict[tuple[int, int], list[int]] = {}
        for j in range(b):
            bkey = (gathered[j][0].shape[2], int(positions[j]))
            buckets.setdefault(bkey, []).append(j)
        out = np.empty((b, h * hd), dtype=np.float32)
        for (_, pos), rows in buckets.items():
            kb = np.concatenate([gathered[j][0] for j in rows])
            vb = np.concatenate([gathered[j][1] for j in rows])
            out[rows] = self._attention_core(
                q[rows], kb, vb, pos_offset=pos, t=1
            ).astype(np.float32)
        return self._linear_rowwise(f"{pre}.wo", out).reshape(b, 1, c.dim)

    @staticmethod
    def _append_kv_batch(
        kv_caches: list, k: np.ndarray, v: np.ndarray
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Append one token to each request's cache; return gathered views.

        When every cache is the same type and that type offers an
        ``append_batch`` classmethod (e.g.
        :class:`repro.serving.paged_kv.PagedKVCache`), the whole batch is
        written and gathered in vectorized store-level operations; otherwise
        this falls back to per-request ``append`` calls.  Both produce the
        exact values per-request appends would.
        """
        cache_type = type(kv_caches[0])
        batch_append = getattr(cache_type, "append_batch", None)
        if batch_append is not None and all(
            type(cache) is cache_type for cache in kv_caches
        ):
            return batch_append(kv_caches, k, v)
        return [
            cache.append(k[j : j + 1], v[j : j + 1])
            for j, cache in enumerate(kv_caches)
        ]

    def _dense_ffn(self, x2d: np.ndarray, prefix: str) -> np.ndarray:
        gate = self._linear(f"{prefix}.w_gate", x2d)
        up = self._linear(f"{prefix}.w_up", x2d)
        hidden = (gate / (1.0 + np.exp(-gate))) * up  # SiLU(gate) * up
        return self._linear(f"{prefix}.w_down", hidden.astype(np.float32))

    def _dense_ffn_rowwise(self, x2d: np.ndarray, prefix: str) -> np.ndarray:
        gate = self._linear_rowwise(f"{prefix}.w_gate", x2d)
        up = self._linear_rowwise(f"{prefix}.w_up", x2d)
        hidden = (gate / (1.0 + np.exp(-gate))) * up  # SiLU(gate) * up
        return self._linear_rowwise(f"{prefix}.w_down", hidden.astype(np.float32))

    @staticmethod
    def _topk_threshold(logits: np.ndarray, k: int) -> np.ndarray:
        """Per-row value of the k-th largest logit, shape ``(rows, 1)``.

        ``np.argpartition`` (O(E) selection) instead of a full sort — same
        threshold value, hence the same selected experts, asymptotically
        cheaper in the expert count.
        """
        if k >= logits.shape[-1]:
            return logits.min(axis=-1, keepdims=True)
        kth_idx = np.argpartition(logits, -k, axis=-1)[:, -k][:, None]
        return np.take_along_axis(logits, kth_idx, axis=-1)

    def _moe_ffn(self, x2d: np.ndarray, layer: int) -> np.ndarray:
        c = self.config
        pre = f"layers.{layer}"
        logits = x2d @ self.weights[f"{pre}.router"].T  # router stays FP16
        kth = self._topk_threshold(logits, c.top_k)
        masked = np.where(logits >= kth, logits, -np.inf)
        masked -= masked.max(axis=-1, keepdims=True)
        e = np.exp(masked)
        gates = e / e.sum(axis=-1, keepdims=True)  # (n, E)
        out = np.zeros_like(x2d)
        for ex in range(c.n_experts):
            active = gates[:, ex] > 0.0
            if not active.any():
                continue
            y = self._dense_ffn(x2d[active], f"{pre}.experts.{ex}")
            out[active] += gates[active, ex : ex + 1] * y
        return out

    def _layer_step(
        self,
        x: np.ndarray,
        layer: int,
        *,
        pos_offset: int = 0,
        cache: dict | None = None,
        rowwise: bool = False,
    ) -> np.ndarray:
        """One decoder layer: attention + FFN with residuals, (B, T, D) -> same.

        ``rowwise=True`` routes every projection through the
        batch-size-invariant per-row kernels (see :meth:`forward`); MoE
        routing stays on the flat path — the serving stack rejects MoE
        models, so position-invariant prefill is a dense-model contract.
        """
        c = self.config
        b, t, _ = x.shape
        pre = f"layers.{layer}"
        h = self._rms_norm(x, self.weights[f"{pre}.attn_norm"], c.norm_eps)
        x = x + self._attention(
            h, layer, pos_offset=pos_offset, cache=cache, rowwise=rowwise
        )
        h = self._rms_norm(x, self.weights[f"{pre}.mlp_norm"], c.norm_eps)
        h2d = h.reshape(b * t, c.dim)
        if c.is_moe:
            ffn = self._moe_ffn(h2d, layer)
        elif rowwise:
            ffn = self._dense_ffn_rowwise(h2d, pre)
        else:
            ffn = self._dense_ffn(h2d, pre)
        return x + ffn.reshape(b, t, c.dim)

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Token embedding lookup: (B, T) int -> (B, T, D) float32."""
        return self.weights["embed"][np.atleast_2d(np.asarray(tokens))]

    def forward_layer(
        self,
        x: np.ndarray,
        layer: int,
        *,
        pos_offset: int = 0,
        cache: dict | None = None,
    ) -> np.ndarray:
        """Advance hidden states through decoder layer ``layer``.

        Together with :meth:`embed` this is the resume-from-activation-
        checkpoint API: sequential calibration carries layer ``i``'s output
        forward instead of re-running the whole model per layer (O(L) total
        layer executions instead of O(L^2)).
        """
        if not 0 <= layer < self.config.n_layers:
            raise ValueError(f"layer {layer} out of range")
        return self._layer_step(x, layer, pos_offset=pos_offset, cache=cache)

    def forward(
        self,
        tokens: np.ndarray,
        *,
        pos_offset: int = 0,
        cache: dict | None = None,
        rowwise: bool = False,
    ) -> np.ndarray:
        """``tokens`` (B, T) int -> logits (B, T, V).

        With ``cache`` (a dict carried across calls) the model runs
        incrementally: pass the prompt once, then one token at a time with
        increasing ``pos_offset``.

        ``rowwise=True`` selects the *position-invariant* kernels: every
        linear, the lm head, and the attention matmuls contract each token
        row independently, so the hidden state (and cached K/V) at position
        ``i`` depends only on tokens ``<= i`` — never on how many later
        positions shared the call.  That makes chunked/resumed prefill
        bit-identical to one-shot prefill, which is what lets the prefix
        cache hand a request someone else's KV pages.  At ``t == 1`` the
        rowwise kernels issue the same single-row GEMMs as the flat path,
        so incremental decode is byte-identical either way.  The flat
        default remains the calibration/perplexity path.
        """
        c = self.config
        tokens = np.atleast_2d(np.asarray(tokens))
        b, t = tokens.shape
        if pos_offset + t > c.max_seq_len:
            raise ValueError(
                f"positions up to {pos_offset + t} exceed max_seq_len {c.max_seq_len}"
            )
        x = self.weights["embed"][tokens]
        for i in range(c.n_layers):
            x = self._layer_step(
                x, i, pos_offset=pos_offset, cache=cache, rowwise=rowwise
            )
        x = self._rms_norm(x, self.weights["final_norm"], c.norm_eps)
        x2d = x.reshape(b * t, c.dim)
        if rowwise:
            logits = rowwise_matmul(x2d, self.weights["lm_head"].T)
        else:
            logits = x2d @ self.weights["lm_head"].T
        return logits.reshape(b, t, c.vocab_size)

    def forward_batch(
        self,
        tokens: np.ndarray,
        positions: np.ndarray,
        caches: list[dict],
    ) -> np.ndarray:
        """Fused decode step for B *independent* sequences -> logits (B, V).

        Request ``j`` contributes its last token ``tokens[j]`` at absolute
        position ``positions[j]`` with incremental KV ``caches[j]``; the
        whole batch runs one row-wise batched linear per projection and
        bucketed ragged attention per layer.  Row ``j`` of the result is
        bit-identical to
        ``forward([[tokens[j]]], pos_offset=positions[j], cache=caches[j])``
        — batch composition never changes any request's numerics (see
        :func:`rowwise_matmul` and :meth:`_attention_core`).
        """
        c = self.config
        if not self.fast_path:
            raise ValueError(
                "forward_batch requires fast_path=True (the pluggable-cache "
                "execution path)"
            )
        if c.is_moe:
            raise ValueError("forward_batch covers dense models only")
        tokens = np.asarray(tokens, dtype=np.int64).ravel()
        positions = np.asarray(positions, dtype=np.int64).ravel()
        b = tokens.shape[0]
        if b == 0 or len(positions) != b or len(caches) != b:
            raise ValueError(
                f"batch mismatch: {b} tokens, {len(positions)} positions, "
                f"{len(caches)} caches (need equal and non-empty)"
            )
        if int(positions.max()) + 1 > c.max_seq_len:
            raise ValueError(
                f"positions up to {int(positions.max()) + 1} exceed "
                f"max_seq_len {c.max_seq_len}"
            )
        x = self.weights["embed"][tokens][:, None, :]
        for i in range(c.n_layers):
            pre = f"layers.{i}"
            hdn = self._rms_norm(x, self.weights[f"{pre}.attn_norm"], c.norm_eps)
            x = x + self._attention_batch(hdn, i, positions, caches)
            hdn = self._rms_norm(x, self.weights[f"{pre}.mlp_norm"], c.norm_eps)
            ffn = self._dense_ffn_rowwise(hdn.reshape(b, c.dim), pre)
            x = x + ffn.reshape(b, 1, c.dim)
        x = self._rms_norm(x, self.weights["final_norm"], c.norm_eps)
        return rowwise_matmul(x.reshape(b, c.dim), self.weights["lm_head"].T)

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def nll(self, tokens: np.ndarray) -> float:
        """Mean next-token negative log-likelihood over (B, T) tokens."""
        tokens = np.atleast_2d(np.asarray(tokens))
        logits = self.forward(tokens[:, :-1]).astype(np.float64)
        targets = tokens[:, 1:]
        shifted = logits - logits.max(axis=-1, keepdims=True)
        logz = np.log(np.exp(shifted).sum(axis=-1))
        tgt_logit = np.take_along_axis(shifted, targets[..., None], axis=-1)[..., 0]
        return float((logz - tgt_logit).mean())

    def sequence_logprob(self, tokens: np.ndarray, *, start: int = 0) -> float:
        """Sum of log P(token_i | prefix) for i in [max(start,1), len)."""
        tokens = np.asarray(tokens).reshape(1, -1)
        logits = self.forward(tokens[:, :-1]).astype(np.float64)[0]
        targets = tokens[0, 1:]
        shifted = logits - logits.max(axis=-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        token_lp = logp[np.arange(len(targets)), targets]
        begin = max(start - 1, 0)  # logits index i predicts token i+1
        return float(token_lp[begin:].sum())

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        *,
        temperature: float = 0.0,
        seed: "int | list[int]" = 0,
    ) -> np.ndarray:
        """Greedy (or sampled) decoding with an incremental KV-cache.

        ``seed`` accepts anything ``np.random.default_rng`` does (ints or
        sequence keys); the serving engine's numeric backend uses per-request
        sequence keys so its sampling stream matches this oracle exactly.

        The prompt pass runs the rowwise (position-invariant) kernels so the
        oracle's prefill bytes match the serving runner's chunked/prefix-
        cached prefill exactly; decode steps are byte-identical under either
        kernel set (t=1), so the flat default is kept there.
        """
        rng = np.random.default_rng(seed)
        tokens = list(np.asarray(prompt).ravel())
        cache: dict = {}
        logits = self.forward(np.asarray(tokens)[None, :], cache=cache, rowwise=True)[
            0, -1
        ]
        for _ in range(max_new_tokens):
            nxt = sample_token(logits, temperature, rng)
            tokens.append(nxt)
            if len(tokens) >= self.config.max_seq_len:
                break
            logits = self.forward(
                np.asarray([[nxt]]), pos_offset=len(tokens) - 1, cache=cache
            )[0, -1]
        return np.asarray(tokens, dtype=np.int64)

    def capture_linear_inputs(
        self, tokens: np.ndarray, names: list[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Run a forward pass recording the input activation of each linear.

        Returns ``{linear_name: (total_tokens, in_features)}`` stacked over
        the batch.  Used for calibration (outlier identification, GPTQ
        Hessians, SmoothQuant statistics).
        """
        self._capture = {}
        try:
            self.forward(tokens)
        finally:
            captured, self._capture = self._capture, None
        return self._collect_capture(captured, names)

    def capture_layer_inputs(
        self, x: np.ndarray, layer: int, names: list[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Record linear inputs of ONE decoder layer from hidden states ``x``.

        Runs just layer ``layer`` on ``x`` (as produced by :meth:`embed` /
        :meth:`forward_layer`), discarding the output.  This is the O(L)
        sequential-calibration primitive: capturing layer ``i`` costs one
        layer execution, not a full model forward.
        """
        self._capture = {}
        try:
            self._layer_step(x, layer)
        finally:
            captured, self._capture = self._capture, None
        return self._collect_capture(captured, names)

    @staticmethod
    def _collect_capture(
        captured: dict[str, list[np.ndarray]], names: list[str] | None
    ) -> dict[str, np.ndarray]:
        keep = set(names) if names is not None else None
        return {
            k: np.concatenate(v, axis=0)
            for k, v in captured.items()
            if keep is None or k in keep
        }
