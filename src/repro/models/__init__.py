"""Llama-family model substrate: training, inference, and the model zoo.

The paper evaluates on pretrained Llama 7B-65B, Llama-2, and Mixtral
checkpoints.  Those are unavailable offline, so this package provides a
scaled-down analog family trained from scratch (see DESIGN.md §2):

- :mod:`repro.models.config`   — architecture configs and the size family;
- :mod:`repro.models.net`      — the trainable decoder built on ``repro.tensor``;
- :mod:`repro.models.llama`    — the pure-NumPy inference model with pluggable
  quantized linear backends and a pluggable KV-cache codec (this is what the
  quantizers in ``repro.core`` / ``repro.baselines`` wrap);
- :mod:`repro.models.outliers` — function-preserving activation-outlier
  injection, recreating the outlier-channel phenomenon of Fig. 5;
- :mod:`repro.models.trainer`  — the AdamW training loop;
- :mod:`repro.models.zoo`      — deterministic, disk-cached trained models.
"""

from repro.models.config import MODEL_FAMILY, ModelConfig, get_config
from repro.models.llama import (
    FloatLinear,
    IdentityKVCodec,
    KVCodec,
    LinearImpl,
    LlamaModel,
)
from repro.models.net import TrainableLlama
from repro.models.outliers import inject_outlier_channels
from repro.models.trainer import TrainResult, train_model
from repro.models.zoo import load_model, zoo_cache_dir

__all__ = [
    "FloatLinear",
    "IdentityKVCodec",
    "KVCodec",
    "LinearImpl",
    "LlamaModel",
    "MODEL_FAMILY",
    "ModelConfig",
    "TrainResult",
    "TrainableLlama",
    "get_config",
    "inject_outlier_channels",
    "load_model",
    "train_model",
    "zoo_cache_dir",
]
