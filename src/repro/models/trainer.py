"""Training loop for the model zoo.

Models are trained as character-level language models on the concatenation
of the three synthetic corpora, so one checkpoint can be evaluated on all
three "datasets" (mirroring how one Llama checkpoint is evaluated on
WikiText2/PTB/C4).  AdamW, cosine decay with warmup, gradient clipping.
Deterministic given (config, TrainSpec).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.corpus import CORPUS_NAMES, corpus_splits
from repro.data.tokenizer import CharTokenizer
from repro.models.config import ModelConfig
from repro.models.net import TrainableLlama
from repro.tensor.optim import AdamW, clip_grad_norm

__all__ = ["TrainSpec", "TrainResult", "train_model", "training_tokens"]


@dataclass(frozen=True)
class TrainSpec:
    """Hyperparameters of a zoo training run."""

    steps: int = 350
    batch_size: int = 8
    seq_len: int = 128
    lr: float = 3e-3
    warmup: int = 40
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    train_chars: int = 150_000  # per corpus

    def cache_key(self) -> str:
        return (
            f"s{self.steps}_b{self.batch_size}_t{self.seq_len}_lr{self.lr}"
            f"_w{self.warmup}_wd{self.weight_decay}_c{self.train_chars}"
        )


@dataclass
class TrainResult:
    """Trained weights plus the loss trace (for diagnostics and tests)."""

    weights: dict[str, np.ndarray]
    losses: list[float]
    wall_seconds: float

    @property
    def final_loss(self) -> float:
        # Average of the last 10 steps smooths minibatch noise.
        tail = self.losses[-10:]
        return float(np.mean(tail))


def training_tokens(spec: TrainSpec) -> np.ndarray:
    """Tokenized training stream: concatenated train splits of all corpora."""
    tok = CharTokenizer()
    texts = [corpus_splits(n, train_chars=spec.train_chars)[0] for n in CORPUS_NAMES]
    return tok.encode("\n".join(texts))


def _lr_at(step: int, spec: TrainSpec) -> float:
    """Linear warmup then cosine decay to 10% of peak."""
    if step < spec.warmup:
        return spec.lr * (step + 1) / spec.warmup
    frac = (step - spec.warmup) / max(1, spec.steps - spec.warmup)
    return spec.lr * (0.1 + 0.9 * 0.5 * (1.0 + np.cos(np.pi * frac)))


def train_model(
    config: ModelConfig,
    spec: TrainSpec | None = None,
    *,
    verbose: bool = False,
) -> TrainResult:
    """Train ``config`` from scratch; returns weights + loss trace."""
    spec = spec or TrainSpec()
    rng = np.random.default_rng((config.seed, 999))
    model = TrainableLlama(config, rng=np.random.default_rng(config.seed))
    opt = AdamW(
        model.parameters(),
        lr=spec.lr,
        weight_decay=spec.weight_decay,
    )
    stream = training_tokens(spec)
    n_positions = len(stream) - spec.seq_len - 1
    if n_positions <= 0:
        raise ValueError("training stream shorter than one sequence")

    losses: list[float] = []
    t0 = time.perf_counter()
    for step in range(spec.steps):
        starts = rng.integers(0, n_positions, size=spec.batch_size)
        batch = np.stack([stream[s : s + spec.seq_len + 1] for s in starts])
        tokens, targets = batch[:, :-1], batch[:, 1:]
        opt.zero_grad()
        loss = model.loss(tokens, targets)
        loss.backward()
        clip_grad_norm(model.parameters(), spec.grad_clip)
        opt.lr = _lr_at(step, spec)
        opt.step()
        losses.append(float(loss.data))
        if verbose and (step % 50 == 0 or step == spec.steps - 1):
            print(
                f"[{config.name}] step {step:4d}  loss {losses[-1]:.4f}  "
                f"lr {opt.lr:.2e}"
            )
    return TrainResult(
        weights=model.export_weights(),
        losses=losses,
        wall_seconds=time.perf_counter() - t0,
    )
