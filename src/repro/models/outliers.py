"""Function-preserving activation-outlier injection.

LLMs at scale exhibit *outlier channels*: a few activation channels whose
magnitudes are orders larger than the rest (Fig. 5(a) of the paper;
Dettmers et al. 2022).  The phenomenon is graded, not binary — beyond the
extreme outliers there is a heavy tail of moderately-large channels, which
is exactly why Atom needs BOTH mixed precision (for the extreme tail) and
fine-grained group quantization (for the residual spread the per-token scale
cannot capture).  Small models trained for a few hundred steps develop
neither, so we inject the structure **without changing the model's
function**, exploiting the same scale-equivariances SmoothQuant exploits in
reverse.

Per activation site, a per-channel scale vector is sampled:

- ``n_outlier`` channels at ~``magnitude``x (log-uniform in [mag/2, 2*mag]) —
  the extreme outliers Atom keeps in INT8;
- a ``moderate_frac`` fraction of remaining channels at 2-8x — the heavy
  tail that makes per-token 4-bit quantization lossy and group quantization
  profitable;
- everything else at 1x.

The scale is applied where the activation is *produced* and divided out of
every consumer weight column:

- *Normed sites* (``attn_in``, ``ffn_in``): multiply the RMSNorm ``gain``,
  divide columns of ``wq/wk/wv`` (resp. ``w_gate/w_up``).
- *Attention output* (``attn_out``): scale rows of ``wv``, divide the
  corresponding ``wo`` columns (GQA-aware).  Kept MILD (moderate tail only,
  small caps) because this scale also lands on the **V cache**, and the
  paper's Fig. 9 shows the V cache exhibits few outliers — which is what
  makes KV-cache quantization cheap (§4.4).
- *FFN hidden* (``ffn_hidden``): scale rows of ``w_up``, divide ``w_down``
  columns.

The transform is exactly function-preserving in real arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig

__all__ = ["inject_outlier_channels", "channel_scale_vector"]


def channel_scale_vector(
    rng: np.random.Generator,
    n_channels: int,
    *,
    n_outlier: int,
    magnitude: float,
    moderate_frac: float = 0.25,
    moderate_range: tuple[float, float] = (2.0, 12.0),
) -> np.ndarray:
    """Sample the per-channel magnitude spectrum described above."""
    scales = np.ones(n_channels, dtype=np.float64)
    order = rng.permutation(n_channels)
    n_out = min(n_outlier, n_channels - 1)
    outlier_ch = order[:n_out]
    if n_out:
        lo, hi = np.log(magnitude / 2.0), np.log(magnitude * 2.0)
        scales[outlier_ch] = np.exp(rng.uniform(lo, hi, size=n_out))
    n_mod = int(round(moderate_frac * (n_channels - n_out)))
    if n_mod:
        mod_ch = order[n_out : n_out + n_mod]
        lo, hi = np.log(moderate_range[0]), np.log(moderate_range[1])
        scales[mod_ch] = np.exp(rng.uniform(lo, hi, size=n_mod))
    return scales.astype(np.float32)


def inject_outlier_channels(
    config: ModelConfig,
    weights: dict[str, np.ndarray],
    *,
    n_outlier: int | None = None,
    magnitude: float | None = None,
    seed: int = 1234,
) -> dict[str, np.ndarray]:
    """Return a copy of ``weights`` with the outlier spectrum injected."""
    n_out = n_outlier if n_outlier is not None else config.n_outlier
    mag = magnitude if magnitude is not None else config.outlier_scale
    rng = np.random.default_rng(seed)
    w = {k: v.copy() for k, v in weights.items()}
    c = config
    group = c.n_heads // c.n_kv_heads

    for i in range(c.n_layers):
        pre = f"layers.{i}"

        # --- attn_in: scale attn_norm gain, compensate wq/wk/wv columns.
        s = channel_scale_vector(rng, c.dim, n_outlier=n_out, magnitude=mag)
        w[f"{pre}.attn_norm"] *= s
        for name in ("wq", "wk", "wv"):
            w[f"{pre}.{name}"] /= s[None, :]

        # --- ffn_in: scale mlp_norm gain, compensate gate/up columns.
        s = channel_scale_vector(rng, c.dim, n_outlier=n_out, magnitude=mag)
        w[f"{pre}.mlp_norm"] *= s
        gate_up = (
            [f"{pre}.experts.{e}.{n}" for e in range(c.n_experts) for n in ("w_gate", "w_up")]
            if c.is_moe
            else [f"{pre}.w_gate", f"{pre}.w_up"]
        )
        for name in gate_up:
            w[name] /= s[None, :]
        if c.is_moe:
            # The router consumes the same normed activation; compensate it
            # too or the gating (and thus the function) would change.
            w[f"{pre}.router"] /= s[None, :]

        # --- attn_out: mild spectrum only (this scale lands on the V cache;
        # Fig. 9 shows V has few outliers, which keeps KV quantization cheap).
        s = channel_scale_vector(
            rng,
            c.kv_dim,
            n_outlier=0,
            magnitude=1.0,
            moderate_frac=0.15,
            moderate_range=(1.5, 5.0),
        )
        w[f"{pre}.wv"] *= s[:, None]
        # v channel (kv_head h, dim d) feeds output channel
        # (h*group + g)*head_dim + d for each query head g in the group.
        full = np.empty(c.dim, dtype=np.float32)
        kv_head, d_in_head = np.divmod(np.arange(c.kv_dim), c.head_dim)
        for g in range(group):
            out_ch = (kv_head * group + g) * c.head_dim + d_in_head
            full[out_ch] = s
        w[f"{pre}.wo"] /= full[None, :]

        # --- ffn_hidden: scale w_up rows, compensate w_down columns.
        s = channel_scale_vector(rng, c.ffn_dim, n_outlier=n_out, magnitude=mag)
        if c.is_moe:
            for e in range(c.n_experts):
                ep = f"{pre}.experts.{e}"
                w[f"{ep}.w_up"] *= s[:, None]
                w[f"{ep}.w_down"] /= s[None, :]
        else:
            w[f"{pre}.w_up"] *= s[:, None]
            w[f"{pre}.w_down"] /= s[None, :]

    return w
