"""Trainable Llama-style decoder on the ``repro.tensor`` autograd engine.

Architecture (matching the inference model in :mod:`repro.models.llama`):
token embedding -> N pre-norm blocks (RMSNorm -> GQA attention with RoPE ->
residual; RMSNorm -> SwiGLU FFN or top-k MoE -> residual) -> final RMSNorm ->
untied LM head.

Weight naming is shared with the inference model so :meth:`export_weights`
round-trips: ``embed``, ``lm_head``, ``final_norm``,
``layers.{i}.{attn_norm,wq,wk,wv,wo,mlp_norm}``, and either
``layers.{i}.{w_gate,w_up,w_down}`` (dense) or ``layers.{i}.router`` +
``layers.{i}.experts.{e}.{w_gate,w_up,w_down}`` (MoE).
All projection weights use the ``(out_features, in_features)`` layout.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig
from repro.tensor import Tensor, cross_entropy, embedding, rms_norm, rope, silu, softmax
from repro.tensor.init import normal_init, ones_init

__all__ = ["TrainableLlama", "rope_tables"]


def rope_tables(
    max_len: int, head_dim: int, theta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute RoPE cos/sin tables of shape ``(max_len, head_dim/2)``."""
    half = head_dim // 2
    freqs = 1.0 / theta ** (np.arange(half, dtype=np.float64) / half)
    angles = np.outer(np.arange(max_len, dtype=np.float64), freqs)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


class TrainableLlama:
    """The training-time model; owns parameters as autograd Tensors."""

    def __init__(self, config: ModelConfig, *, rng: np.random.Generator | None = None):
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        c = config
        std = 0.02
        # Residual-branch projections get the GPT-2 depth-scaled init.
        res_std = std / np.sqrt(2.0 * c.n_layers)
        p: dict[str, Tensor] = {}
        p["embed"] = normal_init((c.vocab_size, c.dim), rng, std=std, name="embed")
        p["lm_head"] = normal_init((c.vocab_size, c.dim), rng, std=std, name="lm_head")
        p["final_norm"] = ones_init((c.dim,), name="final_norm")
        for i in range(c.n_layers):
            pre = f"layers.{i}"
            p[f"{pre}.attn_norm"] = ones_init((c.dim,), name=f"{pre}.attn_norm")
            p[f"{pre}.wq"] = normal_init((c.dim, c.dim), rng, std=std, name=f"{pre}.wq")
            p[f"{pre}.wk"] = normal_init((c.kv_dim, c.dim), rng, std=std, name=f"{pre}.wk")
            p[f"{pre}.wv"] = normal_init((c.kv_dim, c.dim), rng, std=std, name=f"{pre}.wv")
            p[f"{pre}.wo"] = normal_init((c.dim, c.dim), rng, std=res_std, name=f"{pre}.wo")
            p[f"{pre}.mlp_norm"] = ones_init((c.dim,), name=f"{pre}.mlp_norm")
            if c.is_moe:
                p[f"{pre}.router"] = normal_init(
                    (c.n_experts, c.dim), rng, std=std, name=f"{pre}.router"
                )
                for e in range(c.n_experts):
                    ep = f"{pre}.experts.{e}"
                    p[f"{ep}.w_gate"] = normal_init((c.ffn_dim, c.dim), rng, std=std, name=f"{ep}.w_gate")
                    p[f"{ep}.w_up"] = normal_init((c.ffn_dim, c.dim), rng, std=std, name=f"{ep}.w_up")
                    p[f"{ep}.w_down"] = normal_init((c.dim, c.ffn_dim), rng, std=res_std, name=f"{ep}.w_down")
            else:
                p[f"{pre}.w_gate"] = normal_init((c.ffn_dim, c.dim), rng, std=std, name=f"{pre}.w_gate")
                p[f"{pre}.w_up"] = normal_init((c.ffn_dim, c.dim), rng, std=std, name=f"{pre}.w_up")
                p[f"{pre}.w_down"] = normal_init((c.dim, c.ffn_dim), rng, std=res_std, name=f"{pre}.w_down")
        self.params = p
        self._cos, self._sin = rope_tables(c.max_seq_len, c.head_dim, c.rope_theta)

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Tensor]:
        return list(self.params.values())

    def n_params(self) -> int:
        return sum(t.size for t in self.parameters())

    def export_weights(self) -> dict[str, np.ndarray]:
        """Snapshot parameters as plain float32 arrays (for the inference model)."""
        return {k: v.data.copy() for k, v in self.params.items()}

    def load_weights(self, weights: dict[str, np.ndarray]) -> None:
        for k, t in self.params.items():
            if k not in weights:
                raise KeyError(f"missing weight {k!r}")
            if weights[k].shape != t.data.shape:
                raise ValueError(
                    f"shape mismatch for {k!r}: {weights[k].shape} vs {t.data.shape}"
                )
            t.data = weights[k].astype(np.float32).copy()

    # ------------------------------------------------------------------ #
    def _linear(self, x: Tensor, name: str) -> Tensor:
        """``x @ W.T`` with W stored (out, in); x is (..., in)."""
        w = self.params[name]
        return x @ w.transpose()

    def _attention(self, x: Tensor, layer: int, mask: np.ndarray) -> Tensor:
        c = self.config
        b, t, _ = x.shape
        h, kv, hd = c.n_heads, c.n_kv_heads, c.head_dim
        pre = f"layers.{layer}"
        q = self._linear(x, f"{pre}.wq").reshape(b, t, h, hd).transpose(0, 2, 1, 3)
        k = self._linear(x, f"{pre}.wk").reshape(b, t, kv, hd).transpose(0, 2, 1, 3)
        v = self._linear(x, f"{pre}.wv").reshape(b, t, kv, hd).transpose(0, 2, 1, 3)
        cos, sin = self._cos[:t], self._sin[:t]
        q = rope(q, cos, sin)
        k = rope(k, cos, sin)
        if kv != h:
            # Grouped-query attention: broadcast each KV head over its group.
            g = h // kv
            ones = Tensor(np.ones((1, 1, g, 1, 1), dtype=np.float32))
            k = (k.reshape(b, kv, 1, t, hd) * ones).reshape(b, h, t, hd)
            v = (v.reshape(b, kv, 1, t, hd) * ones).reshape(b, h, t, hd)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        scores = scores + Tensor(mask)
        attn = softmax(scores, axis=-1)
        out = (attn @ v).transpose(0, 2, 1, 3).reshape(b, t, h * hd)
        return self._linear(out, f"{pre}.wo")

    def _dense_ffn(self, x: Tensor, prefix: str) -> Tensor:
        gate = silu(self._linear(x, f"{prefix}.w_gate"))
        up = self._linear(x, f"{prefix}.w_up")
        return self._linear(gate * up, f"{prefix}.w_down")

    def _moe_ffn(self, x: Tensor, layer: int) -> Tensor:
        """Mixtral-style top-k MoE with differentiable gate weights.

        All experts run on all tokens (cheap at this scale); non-top-k gates
        are masked to -inf *before* the softmax, so selected-expert weights
        receive gradient and unselected experts receive none.
        """
        c = self.config
        pre = f"layers.{layer}"
        logits = self._linear(x, f"{pre}.router")  # (b, t, E)
        raw = logits.data
        kth = np.sort(raw, axis=-1)[..., -c.top_k][..., None]
        mask = np.where(raw >= kth, 0.0, -1e9).astype(np.float32)
        gates = softmax(logits + Tensor(mask), axis=-1)  # (b, t, E)
        out: Tensor | None = None
        for e in range(c.n_experts):
            expert = self._dense_ffn(x, f"{pre}.experts.{e}")
            weighted = expert * gates[..., e : e + 1]
            out = weighted if out is None else out + weighted
        assert out is not None
        return out

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Teacher-forcing forward: ``tokens`` (B, T) int -> logits (B, T, V)."""
        c = self.config
        tokens = np.asarray(tokens)
        b, t = tokens.shape
        if t > c.max_seq_len:
            raise ValueError(f"sequence length {t} exceeds max {c.max_seq_len}")
        mask = np.triu(np.full((1, 1, t, t), -1e9, dtype=np.float32), k=1)
        x = embedding(self.params["embed"], tokens)
        for i in range(c.n_layers):
            pre = f"layers.{i}"
            h = rms_norm(x, self.params[f"{pre}.attn_norm"], c.norm_eps)
            x = x + self._attention(h, i, mask)
            h = rms_norm(x, self.params[f"{pre}.mlp_norm"], c.norm_eps)
            ffn = self._moe_ffn(h, i) if c.is_moe else self._dense_ffn(h, pre)
            x = x + ffn
        x = rms_norm(x, self.params["final_norm"], c.norm_eps)
        return self._linear(x, "lm_head")

    def loss(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean cross-entropy of next-token prediction."""
        logits = self.forward(tokens)
        return cross_entropy(
            logits.reshape(-1, self.config.vocab_size), np.asarray(targets).reshape(-1)
        )
