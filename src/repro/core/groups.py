"""Ragged group slices: the channel layout of a reordered matrix.

After Atom's channel reordering (Fig. 7), a matrix's channel axis looks like::

    [ body group 0 | body group 1 | ... | body group N-1 | outlier tail ]
      low-bit        low-bit               low-bit          high-bit/FP16

Each contiguous slice is quantized independently (its own scale per token /
per output channel).  The paper's dimensions make every group exactly
``group_size`` wide (128 outliers on 4096 channels); our scaled-down models
may leave a ragged final body group, which the slice abstraction handles
uniformly.

``bits=None`` marks an FP16 passthrough slice (the "keep outliers in FP16"
ablation row of Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GroupSlice", "make_group_slices"]


@dataclass(frozen=True)
class GroupSlice:
    """One contiguous channel range quantized with a single scale set.

    ``fmt`` optionally overrides the containing weight's number format for
    this slice (e.g. an FP8 outlier tail over an INT4 body); ``None``
    inherits.
    """

    start: int
    stop: int
    bits: int | None  # None => keep FP16
    is_outlier: bool = False
    fmt: str | None = None

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty slice [{self.start}, {self.stop})")
        if self.bits is not None and not 2 <= self.bits <= 8:
            raise ValueError(f"bits must be in [2, 8] or None, got {self.bits}")
        if self.fmt is not None and self.fmt not in ("int", "fp", "mx"):
            raise ValueError(f"fmt must be 'int', 'fp', 'mx' or None, got {self.fmt}")

    @property
    def width(self) -> int:
        return self.stop - self.start


def make_group_slices(
    n_channels: int,
    *,
    n_outlier: int,
    group_size: int | None,
    body_bits: int,
    outlier_bits: int | None,
    outlier_fmt: str | None = None,
) -> list[GroupSlice]:
    """Build the slice layout for a reordered ``n_channels``-wide matrix.

    ``group_size=None`` puts the whole body in one slice (no group
    quantization — scales are per-token / per-output-channel only).
    ``outlier_fmt`` overrides the outlier tail's number format (e.g. ``"fp"``
    for FP8 outliers over an integer body, §4.1's FP8-vs-INT8 discussion).
    """
    if not 0 <= n_outlier < n_channels:
        raise ValueError(
            f"n_outlier ({n_outlier}) must be in [0, n_channels={n_channels})"
        )
    body = n_channels - n_outlier
    slices: list[GroupSlice] = []
    step = group_size if group_size else body
    for start in range(0, body, step):
        slices.append(GroupSlice(start, min(start + step, body), body_bits))
    if n_outlier:
        slices.append(
            GroupSlice(
                body, n_channels, outlier_bits, is_outlier=True, fmt=outlier_fmt
            )
        )
    return slices
