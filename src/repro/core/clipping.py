"""Grid-search clipping factors (§4.3, §5.1).

Symmetric quantization spends half its levels on the sign; a handful of
extreme values otherwise stretch the scale and waste resolution on the bulk
of the distribution.  Clipping shrinks the dynamic range by a factor
``c < 1``: the few clamped values incur saturation error, everything else
gains rounding precision.

The paper grid-searches and lands on 0.9 for activations and 0.85 for
weights.  :func:`search_clip` reproduces that search, minimizing
reconstruction MSE of quantize->dequantize over a candidate grid.
"""

from __future__ import annotations

import numpy as np

from repro.quant.dtypes import IntFormat
from repro.quant.uniform import dequantize, quantize_symmetric, symmetric_scale

__all__ = ["search_clip", "DEFAULT_GRID"]

DEFAULT_GRID = tuple(np.round(np.arange(0.70, 1.0001, 0.05), 2))


def search_clip(
    x: np.ndarray,
    bits: int,
    *,
    grid: tuple[float, ...] = DEFAULT_GRID,
    per_token: bool = True,
) -> tuple[float, float]:
    """Return ``(best_clip, best_mse)`` over the candidate grid.

    ``per_token=True`` evaluates with row-wise scales (the dynamic-
    quantization setting used for activations); ``False`` uses one tensor
    scale (closer to the weight per-output-channel case when ``x`` is passed
    row-by-row).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {x.shape}")
    fmt = IntFormat(bits)
    axis = (1,) if per_token else None
    best_clip, best_mse = 1.0, np.inf
    for clip in grid:
        scale = symmetric_scale(x, fmt, clip=float(clip), axis=axis)
        q = quantize_symmetric(x, scale, fmt)
        err = float(np.mean((dequantize(q, scale) - x) ** 2))
        if err < best_mse:
            best_clip, best_mse = float(clip), err
    return best_clip, best_mse
