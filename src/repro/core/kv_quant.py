"""Asymmetric low-bit KV-cache quantization (§4.4).

The self-attention layer in the decode stage is memory-bound: throughput
scales with the bytes of KV-cache moved.  Atom stores the KV-cache in
low-bit and dequantizes on load inside the fused attention kernel; since the
memory traffic of symmetric and asymmetric codes is the same, it uses
**asymmetric** quantization (better accuracy for the one-sided distributions
of K and V) at the granularity of one (token, attention head) vector.

The codec here is accuracy-exact with that scheme: ``encode_decode``
round-trips values through the quantized representation, which is precisely
what the serving kernel's store/load does.
"""

from __future__ import annotations

import numpy as np

from repro.models.llama import KVCodec
from repro.quant.dtypes import IntFormat

__all__ = ["AtomKVCodec", "quantize_kv_headwise"]


def quantize_kv_headwise(
    kv: np.ndarray, bits: int, *, asymmetric: bool = True
) -> np.ndarray:
    """Quantize-dequantize ``(..., head_dim)`` vectors independently."""
    f = IntFormat(bits)
    x = np.asarray(kv, dtype=np.float64)
    if asymmetric:
        xmax = x.max(axis=-1, keepdims=True)
        xmin = x.min(axis=-1, keepdims=True)
        scale = np.maximum((xmax - xmin) / (f.n_levels - 1), 1e-12)
        zero = np.round(-xmin / scale)
        q = np.clip(np.round(x / scale) + zero, f.umin, f.umax)
        return (q - zero) * scale
    amax = np.maximum(np.abs(x).max(axis=-1, keepdims=True), 1e-12)
    scale = 2.0 * amax / (f.n_levels - 1)
    q = np.clip(np.round(x / scale), f.qmin, f.qmax)
    return q * scale


class AtomKVCodec(KVCodec):
    """Per-(token, head) asymmetric quantization of the KV-cache."""

    def __init__(self, bits: int = 4, *, asymmetric: bool = True) -> None:
        if not 2 <= bits <= 8:
            raise ValueError(f"kv bits must be in [2, 8], got {bits}")
        self._bits = bits
        self.asymmetric = asymmetric

    def encode_decode(self, kv: np.ndarray, kind: str) -> np.ndarray:
        if kind not in ("k", "v"):
            raise ValueError(f"kind must be 'k' or 'v', got {kind!r}")
        return quantize_kv_headwise(kv, self._bits, asymmetric=self.asymmetric)

    @property
    def bits(self) -> float:
        # Scale + zero point (FP16 each) amortized over one head vector is
        # negligible for memory-movement modelling; codes dominate.
        return float(self._bits)
