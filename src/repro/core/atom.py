"""The Atom model-level quantization pipeline (§4.5, Fig. 6).

``AtomQuantizer(config).quantize(model)`` performs the full offline process
of §5.1 on an inference :class:`~repro.models.llama.LlamaModel`:

1. sample calibration tokens (the analog of 128 WikiText2 sentences);
2. capture per-site calibration activations in one forward pass;
3. per activation site: identify outlier channels by square sum and build
   the reorder permutation (shared by all consumers of the site — including
   all experts of an MoE FFN, the paper's footnote 4);
4. per linear: statically reorder the weight columns, quantize the body with
   GPTQ (or RTN) using grouped scales and the weight clip factor, keep the
   outlier tail in INT8 (or FP16 / FP8, configurable);
5. install :class:`~repro.core.linear.AtomLinear` executors that perform the
   dynamic activation quantization + integer GEMM at run time;
6. install the asymmetric KV-cache codec.

With ``config.sequential=True``, calibration proceeds layer by layer: layer
``i``'s outliers and Hessians are measured on activations produced by the
ALREADY-QUANTIZED layers ``0..i-1`` (the GPTQ-paper protocol), which lets
later layers compensate accumulated quantization drift.  The default
implementation is O(L) in total layer executions: the calibration hidden
states are carried forward through each freshly quantized layer
(:meth:`~repro.models.llama.LlamaModel.forward_layer`) instead of re-running
the whole model per layer (``quantize(..., sequential_resume=False)`` keeps
the O(L^2) full-forward reference; both produce bit-identical results).

The returned model is a fresh clone; the input model is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AtomConfig
from repro.core.gptq import gptq_quantize, hessian, rtn_weight_quantize
from repro.core.groups import make_group_slices
from repro.core.kv_quant import AtomKVCodec
from repro.core.linear import AtomLinear
from repro.core.outliers import (
    identify_outliers,
    reorder_permutation,
    sample_calibration_tokens,
)
from repro.models.llama import LlamaModel, input_site
from repro.quant.error import relative_error

__all__ = ["AtomQuantizer", "QuantizationReport"]


@dataclass
class QuantizationReport:
    """Diagnostics of one quantization run."""

    weight_errors: dict[str, float] = field(default_factory=dict)
    outlier_channels: dict[str, np.ndarray] = field(default_factory=dict)
    effective_weight_bits: dict[str, float] = field(default_factory=dict)

    @property
    def mean_weight_error(self) -> float:
        if not self.weight_errors:
            return 0.0
        return float(np.mean(list(self.weight_errors.values())))


class AtomQuantizer:
    """Applies the Atom recipe to a model."""

    def __init__(self, config: AtomConfig | None = None) -> None:
        self.config = config or AtomConfig()
        self.report = QuantizationReport()

    # ------------------------------------------------------------------ #
    def _resolve_n_outlier(self, model: LlamaModel) -> int:
        if self.config.n_outlier is not None:
            return self.config.n_outlier
        return model.config.n_outlier

    def _resolve_group(self, model: LlamaModel) -> int | None:
        if self.config.group_size is None:
            return None
        # The paper's 128-wide groups on 4096 channels scale down to the
        # model config's structural group size on our analog models; any
        # explicitly smaller value is honoured as-is (ablation sweeps).
        if self.config.group_size >= 128:
            return model.config.group_size
        return self.config.group_size

    # ------------------------------------------------------------------ #
    def _layer_linears(self, model: LlamaModel) -> dict[int, list[str]]:
        """Quantizable linears grouped by decoder layer, execution order."""
        by_layer: dict[int, list[str]] = {}
        for name in model.linear_names():
            layer = int(name.split(".")[1])
            by_layer.setdefault(layer, []).append(name)
        return by_layer

    def _quantize_layer(
        self,
        source: LlamaModel,
        qmodel: LlamaModel,
        linears: list[str],
        site_acts: dict[str, np.ndarray],
        n_outlier: int,
        group_size: int | None,
    ) -> None:
        """Quantize one layer's linears given its calibration activations."""
        cfg = self.config
        perms: dict[str, np.ndarray | None] = {}
        hessians: dict[str, np.ndarray] = {}
        for site, acts in site_acts.items():
            if n_outlier > 0:
                idx = identify_outliers(acts, min(n_outlier, acts.shape[1] - 1))
                perm = reorder_permutation(acts.shape[1], idx)
                self.report.outlier_channels[site] = idx
            else:
                perm = None
            perms[site] = perm
            if cfg.use_gptq:
                x = acts if perm is None else acts[:, perm]
                hessians[site] = hessian(x)

        mapping: dict[str, AtomLinear] = {}
        for name in linears:
            site = input_site(name)
            perm = perms[site]
            w = source.weights[name].astype(np.float64)
            w_r = w if perm is None else w[:, perm]
            slices = make_group_slices(
                w.shape[1],
                n_outlier=min(n_outlier, w.shape[1] - 1) if n_outlier else 0,
                group_size=group_size,
                body_bits=cfg.w_bits,
                outlier_bits=cfg.outlier_bits,
                outlier_fmt=cfg.outlier_fmt,
            )
            if cfg.use_gptq:
                sliced = gptq_quantize(
                    w_r,
                    hessians[site],
                    slices,
                    clip=cfg.weight_clip,
                    fmt=cfg.fmt,
                    act_order=cfg.act_order,
                )
            else:
                sliced = rtn_weight_quantize(
                    w_r, slices, clip=cfg.weight_clip, fmt=cfg.fmt
                )
            impl = AtomLinear(
                sliced,
                perm=perm,
                a_bits=cfg.a_bits,
                act_clip=cfg.act_clip,
                fmt=cfg.fmt,
            )
            mapping[name] = impl
            self.report.weight_errors[name] = relative_error(
                w, impl.dequantized_weight()
            )
            self.report.effective_weight_bits[name] = impl.effective_weight_bits()
        qmodel.replace_linears(mapping)

    @staticmethod
    def _sites_from_capture(
        captured: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Collapse per-linear captures to per-site activations (first wins)."""
        sites: dict[str, np.ndarray] = {}
        for linear_name, acts in captured.items():
            site = input_site(linear_name)
            if site not in sites:
                sites[site] = acts
        return sites

    @classmethod
    def _site_acts_for(
        cls, model: LlamaModel, calib_tokens: np.ndarray, linears: list[str]
    ) -> dict[str, np.ndarray]:
        """Capture calibration activations for the given linears' sites."""
        captured = model.capture_linear_inputs(calib_tokens, names=linears)
        return cls._sites_from_capture(captured)

    # ------------------------------------------------------------------ #
    def quantize(
        self,
        model: LlamaModel,
        *,
        calib_tokens: np.ndarray | None = None,
        sequential_resume: bool = True,
    ) -> LlamaModel:
        """Return a quantized clone of ``model``.

        ``sequential_resume`` (sequential mode only) selects the O(L)
        carried-hidden-state calibration; ``False`` re-runs a full forward
        per layer (the O(L^2) reference — bit-identical, kept for the
        equivalence suite and the perf harness's "before" measurement).
        """
        cfg = self.config
        if calib_tokens is None:
            calib_tokens = sample_calibration_tokens(
                cfg.calib_sequences, cfg.calib_seq_len
            )
        n_outlier = self._resolve_n_outlier(model)
        group_size = self._resolve_group(model)
        qmodel = model.clone()
        by_layer = self._layer_linears(model)

        if cfg.sequential and sequential_resume:
            # Layer-by-layer with activation-checkpoint resume: calibrate
            # layer i on hidden states already advanced through quantized
            # layers 0..i-1, then push the states through the freshly
            # quantized layer i.  Two layer executions per layer => O(L).
            x = qmodel.embed(calib_tokens)
            for layer in sorted(by_layer):
                linears = by_layer[layer]
                captured = qmodel.capture_layer_inputs(x, layer, names=linears)
                site_acts = self._sites_from_capture(captured)
                self._quantize_layer(
                    model, qmodel, linears, site_acts, n_outlier, group_size
                )
                x = qmodel.forward_layer(x, layer)
        elif cfg.sequential:
            # Reference O(L^2): calibrate each layer with a full forward of
            # the partially quantized model.
            for layer in sorted(by_layer):
                linears = by_layer[layer]
                site_acts = self._site_acts_for(qmodel, calib_tokens, linears)
                self._quantize_layer(
                    model, qmodel, linears, site_acts, n_outlier, group_size
                )
        else:
            all_linears = model.linear_names()
            site_acts = self._site_acts_for(model, calib_tokens, all_linears)
            self._quantize_layer(
                model, qmodel, all_linears, site_acts, n_outlier, group_size
            )

        if cfg.kv_bits is not None:
            qmodel.kv_codec = AtomKVCodec(cfg.kv_bits)
        return qmodel
