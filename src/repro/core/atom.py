"""The Atom model-level quantization pipeline (§4.5, Fig. 6).

``AtomQuantizer(config).quantize(model)`` performs the full offline process
of §5.1 on an inference :class:`~repro.models.llama.LlamaModel`:

1. sample calibration tokens (the analog of 128 WikiText2 sentences);
2. capture per-site calibration activations in one forward pass;
3. per activation site: identify outlier channels by square sum and build
   the reorder permutation (shared by all consumers of the site — including
   all experts of an MoE FFN, the paper's footnote 4);
4. per linear: statically reorder the weight columns, quantize the body with
   GPTQ (or RTN) using grouped scales and the weight clip factor, keep the
   outlier tail in INT8 (or FP16 / FP8, configurable);
5. install :class:`~repro.core.linear.AtomLinear` executors that perform the
   dynamic activation quantization + integer GEMM at run time;
6. install the asymmetric KV-cache codec.

With ``config.sequential=True``, calibration proceeds layer by layer: layer
``i``'s outliers and Hessians are measured on activations produced by the
ALREADY-QUANTIZED layers ``0..i-1`` (the GPTQ-paper protocol), which lets
later layers compensate accumulated quantization drift.  The default
implementation is O(L) in total layer executions: the calibration hidden
states are carried forward through each freshly quantized layer
(:meth:`~repro.models.llama.LlamaModel.forward_layer`) instead of re-running
the whole model per layer (``quantize(..., sequential_resume=False)`` keeps
the O(L^2) full-forward reference; both produce bit-identical results).

The returned model is a fresh clone; the input model is untouched.

Robustness (this is the long offline stage, so it is crash-safe and
numerically guarded):

- ``quantize(..., checkpoint_dir=...)`` persists one atomic, checksummed
  checkpoint per quantized layer (:mod:`repro.core.checkpoint`) — emitted
  codes/scales/permutations plus, in sequential-resume mode, the carried
  float32 hidden state — and resumes from the last valid layer.  A resumed
  run is bit-identical to an uninterrupted one.  Corrupt / mismatched
  checkpoints raise :class:`~repro.core.checkpoint.CheckpointError`;
  ``force_restart=True`` discards the directory instead.
- Every run accumulates a :class:`~repro.quant.guards.QuantHealthReport`
  (``quantizer.health``): non-finite calibration activations, degenerate
  scales, Hessian damping escalations and RTN fallbacks are recorded rather
  than silently propagated.  ``strict=True`` (or
  ``ATOM_REPRO_STRICT_GUARDS=1``) raises typed
  :class:`~repro.quant.guards.NumericalError` on non-finite data instead.
- A telemetry sink with a ``pipeline_stage`` hook (e.g.
  :class:`~repro.serving.telemetry.TraceRecorder`) receives typed
  pipeline-stage events (``layer_start`` / ``layer_quantized`` /
  ``checkpoint_saved`` / ``checkpoint_resume`` / ``pipeline_done``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.checkpoint import CheckpointError, CheckpointStore, pipeline_fingerprint
from repro.core.config import AtomConfig
from repro.core.gptq import SlicedWeight, gptq_quantize, hessian, rtn_weight_quantize
from repro.core.groups import GroupSlice, make_group_slices
from repro.core.kv_quant import AtomKVCodec
from repro.core.linear import AtomLinear
from repro.core.outliers import (
    identify_outliers,
    reorder_permutation,
    sample_calibration_tokens,
)
from repro.models.llama import LlamaModel, input_site
from repro.quant.error import relative_error
from repro.quant.guards import QuantHealthReport, check_finite, strict_mode_default

__all__ = ["AtomQuantizer", "QuantizationReport"]


def _stage(telemetry, stage: str, layer: int, *, value: float = 0.0, detail: str = "") -> None:
    """Emit one pipeline-stage event to a duck-typed telemetry sink."""
    if telemetry is not None:
        telemetry.pipeline_stage(stage, layer=layer, detail=detail, value=value)


@dataclass
class QuantizationReport:
    """Diagnostics of one quantization run."""

    weight_errors: dict[str, float] = field(default_factory=dict)
    outlier_channels: dict[str, np.ndarray] = field(default_factory=dict)
    effective_weight_bits: dict[str, float] = field(default_factory=dict)

    @property
    def mean_weight_error(self) -> float:
        if not self.weight_errors:
            return 0.0
        return float(np.mean(list(self.weight_errors.values())))


class AtomQuantizer:
    """Applies the Atom recipe to a model.

    ``strict=None`` defaults to the ``ATOM_REPRO_STRICT_GUARDS`` environment
    switch; ``True`` makes non-finite data raise
    :class:`~repro.quant.guards.NumericalError` mid-pipeline (CI mode)
    instead of being recorded-and-sanitized in ``self.health``.
    """

    def __init__(
        self, config: AtomConfig | None = None, *, strict: bool | None = None
    ) -> None:
        self.config = config or AtomConfig()
        self.report = QuantizationReport()
        self.strict = strict_mode_default() if strict is None else strict
        self.health = QuantHealthReport(strict=self.strict)

    # ------------------------------------------------------------------ #
    def _resolve_n_outlier(self, model: LlamaModel) -> int:
        if self.config.n_outlier is not None:
            return self.config.n_outlier
        return model.config.n_outlier

    def _resolve_group(self, model: LlamaModel) -> int | None:
        if self.config.group_size is None:
            return None
        # The paper's 128-wide groups on 4096 channels scale down to the
        # model config's structural group size on our analog models; any
        # explicitly smaller value is honoured as-is (ablation sweeps).
        if self.config.group_size >= 128:
            return model.config.group_size
        return self.config.group_size

    # ------------------------------------------------------------------ #
    def _layer_linears(self, model: LlamaModel) -> dict[int, list[str]]:
        """Quantizable linears grouped by decoder layer, execution order."""
        by_layer: dict[int, list[str]] = {}
        for name in model.linear_names():
            layer = int(name.split(".")[1])
            by_layer.setdefault(layer, []).append(name)
        return by_layer

    def _quantize_layer(
        self,
        source: LlamaModel,
        qmodel: LlamaModel,
        linears: list[str],
        site_acts: dict[str, np.ndarray],
        n_outlier: int,
        group_size: int | None,
    ) -> None:
        """Quantize one layer's linears given its calibration activations."""
        cfg = self.config
        perms: dict[str, np.ndarray | None] = {}
        hessians: dict[str, np.ndarray] = {}
        for site, acts in site_acts.items():
            if not check_finite(acts, where=site, health=self.health):
                # Non-strict: sanitize so downstream Hessians/scales stay
                # finite (the event is on record either way).
                acts = np.nan_to_num(acts, nan=0.0, posinf=0.0, neginf=0.0)
                site_acts[site] = acts
            if n_outlier > 0:
                idx = identify_outliers(acts, min(n_outlier, acts.shape[1] - 1))
                perm = reorder_permutation(acts.shape[1], idx)
                self.report.outlier_channels[site] = idx
            else:
                perm = None
            perms[site] = perm
            if cfg.use_gptq:
                x = acts if perm is None else acts[:, perm]
                hessians[site] = hessian(x)

        mapping: dict[str, AtomLinear] = {}
        for name in linears:
            site = input_site(name)
            perm = perms[site]
            w = source.weights[name].astype(np.float64)
            w_r = w if perm is None else w[:, perm]
            slices = make_group_slices(
                w.shape[1],
                n_outlier=min(n_outlier, w.shape[1] - 1) if n_outlier else 0,
                group_size=group_size,
                body_bits=cfg.w_bits,
                outlier_bits=cfg.outlier_bits,
                outlier_fmt=cfg.outlier_fmt,
            )
            if cfg.use_gptq:
                sliced = gptq_quantize(
                    w_r,
                    hessians[site],
                    slices,
                    clip=cfg.weight_clip,
                    fmt=cfg.fmt,
                    act_order=cfg.act_order,
                    health=self.health,
                    where=name,
                )
            else:
                sliced = rtn_weight_quantize(
                    w_r,
                    slices,
                    clip=cfg.weight_clip,
                    fmt=cfg.fmt,
                    health=self.health,
                    where=name,
                )
            impl = AtomLinear(
                sliced,
                perm=perm,
                a_bits=cfg.a_bits,
                act_clip=cfg.act_clip,
                fmt=cfg.fmt,
            )
            mapping[name] = impl
            self.report.weight_errors[name] = relative_error(
                w, impl.dequantized_weight()
            )
            self.report.effective_weight_bits[name] = impl.effective_weight_bits()
        qmodel.replace_linears(mapping)

    @staticmethod
    def _sites_from_capture(
        captured: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Collapse per-linear captures to per-site activations (first wins)."""
        sites: dict[str, np.ndarray] = {}
        for linear_name, acts in captured.items():
            site = input_site(linear_name)
            if site not in sites:
                sites[site] = acts
        return sites

    @classmethod
    def _site_acts_for(
        cls, model: LlamaModel, calib_tokens: np.ndarray, linears: list[str]
    ) -> dict[str, np.ndarray]:
        """Capture calibration activations for the given linears' sites."""
        captured = model.capture_linear_inputs(calib_tokens, names=linears)
        return cls._sites_from_capture(captured)

    # ------------------------------------------------------------------ #
    # Checkpoint payloads
    # ------------------------------------------------------------------ #
    def _layer_payload(
        self,
        qmodel: LlamaModel,
        linears: list[str],
        sites: list[str],
        hidden: np.ndarray | None,
    ) -> tuple[dict[str, np.ndarray], dict]:
        """Arrays + metadata capturing one quantized layer exactly."""
        arrays: dict[str, np.ndarray] = {}
        meta_linears: dict[str, dict] = {}
        for name in linears:
            lin = qmodel.linears[name]
            sw = lin.weight
            if lin.perm is not None:
                arrays[f"{name}|perm"] = lin.perm
            scale_none: list[bool] = []
            for i, (codes, scale) in enumerate(zip(sw.codes, sw.scales)):
                arrays[f"{name}|code{i}"] = codes
                scale_none.append(scale is None)
                if scale is not None:
                    arrays[f"{name}|scale{i}"] = scale
            meta_linears[name] = {
                "fmt": sw.fmt,
                "has_perm": lin.perm is not None,
                "scale_none": scale_none,
                "slices": [
                    [s.start, s.stop, s.bits, s.is_outlier, s.fmt]
                    for s in sw.slices
                ],
                "weight_error": self.report.weight_errors[name],
                "effective_bits": self.report.effective_weight_bits[name],
            }
        site_list: list[str] = []
        for site in sites:
            if site in self.report.outlier_channels:
                arrays[f"site|{site}"] = self.report.outlier_channels[site]
                site_list.append(site)
        if hidden is not None:
            arrays["hidden"] = hidden
        meta = {
            "linear_order": list(linears),
            "linears": meta_linears,
            "sites": site_list,
            "has_hidden": hidden is not None,
        }
        return arrays, meta

    def _install_layer(
        self, qmodel: LlamaModel, arrays: dict[str, np.ndarray], meta: dict
    ) -> None:
        """Reinstall a checkpointed layer bit-identically."""
        cfg = self.config
        mapping: dict[str, AtomLinear] = {}
        try:
            for name in meta["linear_order"]:
                lm = meta["linears"][name]
                slices = [
                    GroupSlice(
                        int(start),
                        int(stop),
                        None if bits is None else int(bits),
                        bool(outlier),
                        fmt,
                    )
                    for start, stop, bits, outlier, fmt in lm["slices"]
                ]
                codes: list[np.ndarray] = []
                scales: list[np.ndarray | None] = []
                for i, none in enumerate(lm["scale_none"]):
                    codes.append(arrays[f"{name}|code{i}"])
                    scales.append(None if none else arrays[f"{name}|scale{i}"])
                sliced = SlicedWeight(slices, codes, scales, lm["fmt"])
                perm = arrays[f"{name}|perm"] if lm["has_perm"] else None
                mapping[name] = AtomLinear(
                    sliced,
                    perm=perm,
                    a_bits=cfg.a_bits,
                    act_clip=cfg.act_clip,
                    fmt=cfg.fmt,
                )
                self.report.weight_errors[name] = float(lm["weight_error"])
                self.report.effective_weight_bits[name] = float(
                    lm["effective_bits"]
                )
            for site in meta["sites"]:
                self.report.outlier_channels[site] = arrays[f"site|{site}"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
        qmodel.replace_linears(mapping)

    def _fingerprint(
        self,
        model: LlamaModel,
        calib_tokens: np.ndarray,
        n_outlier: int,
        group_size: int | None,
        mode: str,
    ) -> str:
        return pipeline_fingerprint(
            asdict(self.config),
            asdict(model.config),
            n_outlier,
            group_size,
            mode,
            np.asarray(calib_tokens),
        )

    # ------------------------------------------------------------------ #
    def quantize(
        self,
        model: LlamaModel,
        *,
        calib_tokens: np.ndarray | None = None,
        sequential_resume: bool = True,
        checkpoint_dir: "str | None" = None,
        force_restart: bool = False,
        telemetry=None,
    ) -> LlamaModel:
        """Return a quantized clone of ``model``.

        ``sequential_resume`` (sequential mode only) selects the O(L)
        carried-hidden-state calibration; ``False`` re-runs a full forward
        per layer (the O(L^2) reference — bit-identical, kept for the
        equivalence suite and the perf harness's "before" measurement).

        ``checkpoint_dir`` enables crash-safe per-layer checkpointing: each
        quantized layer is persisted atomically, and a rerun with the same
        (config, model, calibration) triple resumes from the last valid
        layer with bit-identical results.  Mismatched or corrupt checkpoint
        directories raise :class:`CheckpointError` unless
        ``force_restart=True`` discards them first.  ``telemetry`` (any sink
        with a ``pipeline_stage`` hook) receives per-layer stage events.
        """
        cfg = self.config
        self.health = QuantHealthReport(strict=self.strict)
        if calib_tokens is None:
            calib_tokens = sample_calibration_tokens(
                cfg.calib_sequences, cfg.calib_seq_len
            )
        n_outlier = self._resolve_n_outlier(model)
        group_size = self._resolve_group(model)
        qmodel = model.clone()
        by_layer = self._layer_linears(model)
        layers = sorted(by_layer)

        if cfg.sequential and sequential_resume:
            mode = "sequential-resume"
        elif cfg.sequential:
            mode = "sequential-full"
        else:
            mode = "one-shot"

        store = None
        done = -1
        if checkpoint_dir is not None:
            fp = self._fingerprint(model, calib_tokens, n_outlier, group_size, mode)
            store = CheckpointStore(checkpoint_dir, fingerprint=fp)
            if force_restart:
                store.reset()
            else:
                store.verify_compatible()
                done = min(store.last_contiguous_layer(), len(layers) - 1)

        # One-shot mode calibrates every site from the SOURCE model in a
        # single forward pass; skip the capture entirely when every layer is
        # already checkpointed.
        oneshot_acts: dict[str, np.ndarray] | None = None
        if mode == "one-shot" and done < len(layers) - 1:
            oneshot_acts = self._site_acts_for(
                model, calib_tokens, model.linear_names()
            )

        # Sequential-resume mode carries calibration hidden states forward;
        # resumed layers restore them from the checkpoint instead.
        x = qmodel.embed(calib_tokens) if mode == "sequential-resume" else None

        for layer in layers:
            linears = by_layer[layer]
            if store is not None and layer <= done:
                arrays, meta = store.load_layer(layer)
                self._install_layer(qmodel, arrays, meta)
                if mode == "sequential-resume":
                    if "hidden" not in arrays:
                        raise CheckpointError(
                            f"{store.layer_path(layer)}: no carried hidden "
                            "state (checkpoint from a different mode?)"
                        )
                    x = arrays["hidden"]
                _stage(telemetry, "checkpoint_resume", layer, value=len(linears))
                continue
            _stage(telemetry, "layer_start", layer, value=len(linears))
            if mode == "sequential-resume":
                # Layer-by-layer with activation-checkpoint resume: calibrate
                # layer i on hidden states already advanced through quantized
                # layers 0..i-1, then push the states through the freshly
                # quantized layer i.  Two layer executions per layer => O(L).
                captured = qmodel.capture_layer_inputs(x, layer, names=linears)
                site_acts = self._sites_from_capture(captured)
            elif mode == "sequential-full":
                # Reference O(L^2): calibrate each layer with a full forward
                # of the partially quantized model.
                site_acts = self._site_acts_for(qmodel, calib_tokens, linears)
            else:
                prefix = f"layers.{layer}."
                site_acts = {
                    s: a for s, a in oneshot_acts.items() if s.startswith(prefix)
                }
            self._quantize_layer(
                model, qmodel, linears, site_acts, n_outlier, group_size
            )
            if mode == "sequential-resume":
                x = qmodel.forward_layer(x, layer)
            _stage(telemetry, "layer_quantized", layer, value=len(linears))
            if store is not None:
                arrays, meta = self._layer_payload(
                    qmodel,
                    linears,
                    list(site_acts),
                    x if mode == "sequential-resume" else None,
                )
                store.save_layer(layer, arrays, meta)
                _stage(telemetry, "checkpoint_saved", layer)

        if cfg.kv_bits is not None:
            qmodel.kv_codec = AtomKVCodec(cfg.kv_bits)
        _stage(telemetry, "pipeline_done", layers[-1] if layers else -1)
        return qmodel
