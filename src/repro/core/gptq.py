"""GPTQ weight quantization (Frantar et al. 2023) with ragged group scales.

Atom applies GPTQ to weight matrices after channel reordering (§4.3): it is
a purely offline step that compensates the rounding error of each column by
updating the not-yet-quantized columns, using second-order information from
calibration activations (the Hessian ``H = X^T X``).

This implementation follows the reference algorithm: Cholesky factor ``U``
of ``H^{-1}`` (upper), sequential column quantization, rank-1 error
propagation ``W[:, j+1:] -= err ⊗ U[j, j+1:]``.  Group scales are computed
lazily at each group boundary from the *current* (already-compensated)
weights, exactly as the official Atom/GPTQ code does.

Number formats per slice: ``"int"`` (uniform integer), ``"fp"`` (FP4/FP8
minifloat grids, Table 4), ``"mx"`` (integer codes with power-of-two block
scales — the MX/microscaling format §6 expects Blackwell GPUs to accelerate;
MX scales are stored as 8-bit exponents).  A slice's ``fmt`` field overrides
the weight-level format (e.g. FP8 outlier tails over an INT4 body).

``act_order=True`` enables GPTQ's activation-order heuristic: columns are
quantized in order of decreasing Hessian diagonal (most constrained first)
while scales stay defined on the original slice layout.

Slices with ``bits=None`` (FP16 outliers ablation) pass through unquantized
and contribute zero error.

Numerical robustness (see :mod:`repro.quant.guards`): the damped Cholesky
factorization is retried with an escalating damping ladder (the configured
``percdamp``, then 0.1, then 1.0 of the mean Hessian diagonal) when the
Hessian is too ill-conditioned; if no damping level yields a finite factor —
or the compensated quantization itself emits non-finite codes/scales — the
weight falls back to per-column round-to-nearest.  Each escalation and
fallback is recorded in the caller-supplied :class:`QuantHealthReport`, so
the default path (well-conditioned Hessian, first damping level) stays
bit-identical to the pre-guard implementation.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg

from repro.core.groups import GroupSlice
from repro.quant.dtypes import FP4_E2M1, FP8_E4M3, FloatFormat, IntFormat
from repro.quant.guards import QuantHealthReport, check_finite, count_degenerate_scales

__all__ = [
    "gptq_quantize",
    "rtn_weight_quantize",
    "SlicedWeight",
    "hessian",
    "DAMP_ESCALATION",
]

#: Damping ladder tried after the configured ``percdamp`` (fractions of the
#: mean Hessian diagonal), mirroring GPTQ-practice escalation.
DAMP_ESCALATION = (0.1, 1.0)


class SlicedWeight:
    """Quantized weight in reordered, per-slice layout.

    ``codes[i]`` holds slice ``i``'s codes: integer codes for int/mx slices,
    grid-rounded ratios for fp slices, raw FP16 weights for ``bits=None``
    slices (``scales[i]`` is then ``None``).
    """

    def __init__(
        self,
        slices: list[GroupSlice],
        codes: list[np.ndarray],
        scales: list[np.ndarray | None],
        fmt: str,
    ) -> None:
        if not (len(slices) == len(codes) == len(scales)):
            raise ValueError("slices/codes/scales length mismatch")
        self.slices = slices
        self.codes = codes
        self.scales = scales
        self.fmt = fmt

    def slice_fmt(self, s: GroupSlice) -> str:
        return s.fmt or self.fmt

    def dequantize(self) -> np.ndarray:
        """Reassemble the float weight matrix (still in reordered layout)."""
        parts = []
        for codes, scale in zip(self.codes, self.scales):
            if scale is None:
                parts.append(codes.astype(np.float64))
            else:
                parts.append(codes.astype(np.float64) * scale)
        return np.concatenate(parts, axis=1)

    def storage_bits(self) -> int:
        """Bits for codes + scales (FP16 scales; 8-bit E8M0 for MX slices;
        FP16 slices count 16 bits/element)."""
        total = 0
        for s, scale in zip(self.slices, self.scales):
            n_rows = self.codes[0].shape[0]
            if scale is None:
                total += n_rows * s.width * 16
            else:
                scale_bits = 8 if self.slice_fmt(s) == "mx" else 16
                total += n_rows * s.width * s.bits + scale.size * scale_bits
        return total


def _fp_grid(bits: int) -> FloatFormat:
    return FP4_E2M1 if bits == 4 else FP8_E4M3


def _slice_scale(w: np.ndarray, bits: int, clip: float, fmt: str) -> np.ndarray:
    """Per-output-row scale for one weight slice ``(out, width)``."""
    amax = np.abs(w).max(axis=1, keepdims=True)
    amax = np.maximum(amax, 1e-12)
    if fmt == "int":
        return 2.0 * amax / (IntFormat(bits).n_levels - 1) * clip
    if fmt == "mx":
        # Power-of-two scale (E8M0): smallest 2^e covering the clipped range.
        qmax = IntFormat(bits).qmax
        return np.exp2(np.ceil(np.log2(clip * amax / qmax)))
    return amax / _fp_grid(bits).max_value * clip


def _quant_column(
    col: np.ndarray, scale: np.ndarray, bits: int, fmt: str
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize one weight column; returns (codes, dequantized)."""
    s = scale[:, 0]
    if fmt in ("int", "mx"):
        f = IntFormat(bits)
        q = np.clip(np.round(col / s), f.qmin, f.qmax)
        return q.astype(np.int8), q * s
    grid = _fp_grid(bits)
    q = grid.round(col / s)
    return q, q * s


def hessian(x: np.ndarray) -> np.ndarray:
    """Calibration Hessian ``X^T X`` (float64) for GPTQ."""
    x = np.asarray(x, dtype=np.float64)
    return x.T @ x


def _cholesky_inverse_upper(h: np.ndarray, percdamp: float) -> np.ndarray:
    """Damped upper Cholesky factor of ``H^{-1}`` (the GPTQ trick)."""
    damp = percdamp * float(np.mean(np.diag(h)))
    h = h.copy()
    h[np.diag_indices_from(h)] += damp
    h_inv = scipy.linalg.inv(h)
    return scipy.linalg.cholesky((h_inv + h_inv.T) / 2.0, lower=False)


def _robust_cholesky(
    h: np.ndarray,
    percdamp: float,
    *,
    health: QuantHealthReport | None,
    where: str,
) -> np.ndarray | None:
    """Cholesky factor of the damped ``H^{-1}`` with escalating damping.

    Tries the configured ``percdamp`` first (the pre-guard behavior), then
    the :data:`DAMP_ESCALATION` ladder.  A level fails when the
    factorization raises or yields a non-finite factor.  Returns ``None``
    when every level fails (the caller falls back to RTN).
    """
    ladder = [percdamp] + [d for d in DAMP_ESCALATION if d > percdamp]
    for attempt, damp in enumerate(ladder):
        try:
            # An ill-conditioned inverse either yields a non-finite factor
            # (caught below, next damping level) or a usable one; the scipy
            # warning adds nothing the health report doesn't already record.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
                u = _cholesky_inverse_upper(h, damp)
        except (scipy.linalg.LinAlgError, np.linalg.LinAlgError, ValueError):
            continue
        if not np.isfinite(u).all() or np.any(np.diag(u) == 0.0):
            continue
        if attempt > 0 and health is not None:
            health.record(
                "hessian_damping",
                where,
                f"ill-conditioned Hessian: damping escalated "
                f"{percdamp:g} -> {damp:g} of mean diag",
                value=damp,
            )
        return u
    return None


def _sliced_finite(sliced: SlicedWeight) -> bool:
    """True when every code and scale array of ``sliced`` is fully finite."""
    for codes, scale in zip(sliced.codes, sliced.scales):
        if codes.dtype.kind == "f" and not np.isfinite(codes).all():
            return False
        if scale is not None and not np.isfinite(scale).all():
            return False
    return True


def _record_scale_health(
    sliced: SlicedWeight, health: QuantHealthReport | None, where: str
) -> None:
    if health is None:
        return
    for s, scale in zip(sliced.slices, sliced.scales):
        if scale is not None:
            count_degenerate_scales(
                scale, where=f"{where}[{s.start}:{s.stop}]", health=health
            )


def gptq_quantize(
    weight: np.ndarray,
    hess: np.ndarray,
    slices: list[GroupSlice],
    *,
    clip: float = 0.85,
    fmt: str = "int",
    percdamp: float = 0.01,
    act_order: bool = False,
    health: QuantHealthReport | None = None,
    where: str = "weight",
) -> SlicedWeight:
    """GPTQ-quantize ``weight`` (out, in) against calibration Hessian ``hess``.

    With a :class:`QuantHealthReport` attached, non-finite inputs are
    detected (fatal in strict mode; sanitized to zero otherwise), Cholesky
    failures escalate through the damping ladder, and a per-column RTN
    fallback guarantees finite output codes/scales — every recovery recorded.
    """
    w = np.asarray(weight, dtype=np.float64).copy()
    n_out, n_in = w.shape
    if hess.shape != (n_in, n_in):
        raise ValueError(f"Hessian shape {hess.shape} != ({n_in}, {n_in})")
    if sum(s.width for s in slices) != n_in:
        raise ValueError("slices do not cover the weight's input dimension")

    if not check_finite(w, where=f"{where}.weight", health=health):
        w = np.nan_to_num(w, nan=0.0, posinf=0.0, neginf=0.0)
    h = np.asarray(hess, dtype=np.float64).copy()
    check_finite(h, where=f"{where}.hessian", health=health)
    # Dead channels (zero diagonal) get unit curvature and zero weight.
    dead = np.diag(h) == 0.0
    if dead.any() and health is not None:
        health.record(
            "dead_channels",
            f"{where}.hessian",
            f"{int(dead.sum())} channels never activated during calibration",
            count=int(dead.sum()),
        )
    h[dead, dead] = 1.0
    w[:, dead] = 0.0
    # Pristine (sanitized, dead-zeroed) weights for the RTN last resort.
    w_fallback = w.copy()

    def _rtn_fallback(reason: str) -> SlicedWeight:
        if health is not None:
            health.record("rtn_fallback", where, reason)
        return rtn_weight_quantize(
            w_fallback, slices, clip=clip, fmt=fmt, health=health, where=where
        )

    slice_of = np.empty(n_in, dtype=np.int64)
    for i, s in enumerate(slices):
        slice_of[s.start : s.stop] = i

    if act_order:
        # Quantize the most-constrained columns first.  Scales are fixed
        # upfront from the pristine weights (group entry is undefined under
        # a permuted visiting order), and the Hessian is permuted to match.
        perm = np.argsort(-np.diag(h))
        u = _robust_cholesky(
            h[np.ix_(perm, perm)], percdamp, health=health, where=where
        )
        if u is None:
            return _rtn_fallback("no finite Cholesky factor at any damping level")
        codes: list[np.ndarray] = []
        scales: list[np.ndarray | None] = []
        for s in slices:
            if s.bits is None:
                codes.append(np.empty((n_out, s.width), dtype=np.float32))
                scales.append(None)
            else:
                sf = s.fmt or fmt
                scales.append(
                    _slice_scale(w[:, s.start : s.stop], s.bits, clip, sf)
                )
                codes.append(
                    np.empty(
                        (n_out, s.width),
                        dtype=np.int8 if sf in ("int", "mx") else np.float64,
                    )
                )
        w_p = w[:, perm]
        for rank, j in enumerate(perm):
            s = slices[slice_of[j]]
            col = w_p[:, rank]
            if s.bits is None:
                codes[slice_of[j]][:, j - s.start] = col.astype(np.float32)
                continue
            sf = s.fmt or fmt
            q, deq = _quant_column(col, scales[slice_of[j]], s.bits, sf)
            codes[slice_of[j]][:, j - s.start] = q
            err = (col - deq) / u[rank, rank]
            if rank + 1 < n_in:
                w_p[:, rank + 1 :] -= np.outer(err, u[rank, rank + 1 :])
        sliced = SlicedWeight(slices, codes, scales, fmt)
        if not _sliced_finite(sliced):
            if health is not None:
                health.record(
                    "nonfinite_output", where, "GPTQ emitted non-finite values"
                )
            return _rtn_fallback("non-finite GPTQ output")
        _record_scale_health(sliced, health, where)
        return sliced

    u = _robust_cholesky(h, percdamp, health=health, where=where)
    if u is None:
        return _rtn_fallback("no finite Cholesky factor at any damping level")
    codes = []
    scales = []
    for s in slices:
        if s.bits is None:
            codes.append(w[:, s.start : s.stop].astype(np.float32).copy())
            scales.append(None)
            continue
        sf = s.fmt or fmt
        scale = _slice_scale(w[:, s.start : s.stop], s.bits, clip, sf)
        slice_codes = np.empty(
            (n_out, s.width), dtype=np.int8 if sf in ("int", "mx") else np.float64
        )
        for j in range(s.start, s.stop):
            q, deq = _quant_column(w[:, j], scale, s.bits, sf)
            slice_codes[:, j - s.start] = q
            err = (w[:, j] - deq) / u[j, j]
            if j + 1 < n_in:
                w[:, j + 1 :] -= np.outer(err, u[j, j + 1 :])
        codes.append(slice_codes)
        scales.append(scale)
    sliced = SlicedWeight(slices, codes, scales, fmt)
    if not _sliced_finite(sliced):
        if health is not None:
            health.record(
                "nonfinite_output", where, "GPTQ emitted non-finite values"
            )
        return _rtn_fallback("non-finite GPTQ output")
    _record_scale_health(sliced, health, where)
    return sliced


def rtn_weight_quantize(
    weight: np.ndarray,
    slices: list[GroupSlice],
    *,
    clip: float = 1.0,
    fmt: str = "int",
    health: QuantHealthReport | None = None,
    where: str = "weight",
) -> SlicedWeight:
    """Round-to-nearest weight quantization in the same sliced layout."""
    w = np.asarray(weight, dtype=np.float64)
    if sum(s.width for s in slices) != w.shape[1]:
        raise ValueError("slices do not cover the weight's input dimension")
    if not check_finite(w, where=f"{where}.weight", health=health):
        w = np.nan_to_num(w, nan=0.0, posinf=0.0, neginf=0.0)
    codes: list[np.ndarray] = []
    scales: list[np.ndarray | None] = []
    for s in slices:
        block = w[:, s.start : s.stop]
        if s.bits is None:
            codes.append(block.astype(np.float32).copy())
            scales.append(None)
            continue
        sf = s.fmt or fmt
        scale = _slice_scale(block, s.bits, clip, sf)
        if sf in ("int", "mx"):
            f = IntFormat(s.bits)
            q = np.clip(np.round(block / scale), f.qmin, f.qmax).astype(np.int8)
        else:
            q = _fp_grid(s.bits).round(block / scale)
        codes.append(q)
        scales.append(scale)
    sliced = SlicedWeight(slices, codes, scales, fmt)
    _record_scale_health(sliced, health, where)
    return sliced
