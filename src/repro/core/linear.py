"""Quantized linear executors: dynamic activation quantization + integer GEMM.

:class:`AtomLinear` models the full fused pipeline of Figs. 7-8:

1. **Reorder** the incoming activation by the calibration permutation
   (fused into the prior operator in the real kernel; functionally a column
   gather here).
2. **Dynamically quantize** each channel slice per token: low-bit symmetric
   with clipping for body groups, INT8 for the outlier tail (or FP16
   passthrough in the ablation variant).
3. **Integer GEMM per slice** with int64 accumulation (the tensor-core MMA),
   then dequantize with the token-scale x weight-scale outer product and
   accumulate in float (the fused epilogue of Fig. 8).

:class:`QuantLinear` is the same machinery with no reorder and no outlier
tail — the executor used by RTN / SmoothQuant / W8A8-style baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.gptq import SlicedWeight, _fp_grid
from repro.core.groups import GroupSlice
from repro.models.llama import LinearImpl
from repro.quant.dtypes import IntFormat

__all__ = ["AtomLinear", "QuantLinear"]


def _dynamic_act_quant(
    x: np.ndarray, bits: int, clip: float, fmt: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-token symmetric quantization of one activation slice.

    Returns ``(codes, scale)`` with ``scale`` of shape ``(tokens, 1)``.
    ``fmt="mx"`` restricts scales to powers of two (MX/microscaling, §6).
    """
    amax = np.abs(x).max(axis=1, keepdims=True)
    amax = np.maximum(amax, 1e-12)
    if fmt == "int":
        f = IntFormat(bits)
        scale = 2.0 * amax / (f.n_levels - 1) * clip
        codes = np.clip(np.round(x / scale), f.qmin, f.qmax)
        return codes, scale
    if fmt == "mx":
        f = IntFormat(bits)
        scale = np.exp2(np.ceil(np.log2(clip * amax / f.qmax)))
        codes = np.clip(np.round(x / scale), f.qmin, f.qmax)
        return codes, scale
    grid = _fp_grid(bits)
    scale = amax / grid.max_value * clip
    return grid.round(x / scale), scale


class AtomLinear(LinearImpl):
    """Mixed-precision, group-quantized linear with channel reordering."""

    def __init__(
        self,
        weight: SlicedWeight,
        *,
        perm: np.ndarray | None,
        a_bits: int,
        act_clip: float,
        fmt: str = "int",
        out_features: int | None = None,
    ) -> None:
        self.weight = weight
        self.perm = None if perm is None else np.asarray(perm, dtype=np.int64)
        self.a_bits = a_bits
        self.act_clip = act_clip
        self.fmt = fmt
        self._out = (
            out_features if out_features is not None else weight.codes[0].shape[0]
        )
        self._in = sum(s.width for s in weight.slices)
        if self.perm is not None and len(self.perm) != self._in:
            raise ValueError("permutation length != in_features")
        # Pre-transpose weight codes once: the GEMM consumes (width, out).
        self._wT = [c.astype(np.float64).T.copy() for c in weight.codes]
        self._wscaleT = [
            None if s is None else s.T.copy() for s in weight.scales
        ]

    @property
    def out_features(self) -> int:
        return self._out

    @property
    def in_features(self) -> int:
        return self._in

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D activations, got shape {x.shape}")
        if self.perm is not None:
            x = x[:, self.perm]
        y = np.zeros((x.shape[0], self._out), dtype=np.float64)
        for s, w_t, ws_t in zip(self.weight.slices, self._wT, self._wscaleT):
            xs = x[:, s.start : s.stop]
            if ws_t is None:
                # FP16 slice: both operands stay high precision.
                y += xs @ w_t
                continue
            bits = self.a_bits if not s.is_outlier else (s.bits or 8)
            fmt = self.weight.slice_fmt(s)
            codes, scale = _dynamic_act_quant(xs, bits, self.act_clip, fmt)
            # Integer MMA + fused dequant-accumulate (Fig. 8 steps 1-3).
            y += (codes @ w_t) * scale * ws_t
        return y.astype(np.float32)

    def dequantized_weight(self) -> np.ndarray:
        """Float weight in the ORIGINAL (un-reordered) column order."""
        w = self.weight.dequantize()
        if self.perm is None:
            return w
        out = np.empty_like(w)
        out[:, self.perm] = w
        return out

    def effective_weight_bits(self) -> float:
        """Average stored bits per weight element, incl. scales."""
        return self.weight.storage_bits() / (self._out * self._in)


class QuantLinear(AtomLinear):
    """Uniform quantized linear (no reorder, no outlier tail).

    Convenience for the baselines: per-token activations, per-output-channel
    (optionally grouped) weights.
    """

    def __init__(
        self,
        weight: SlicedWeight,
        *,
        a_bits: int,
        act_clip: float = 1.0,
        fmt: str = "int",
    ) -> None:
        if any(s.is_outlier for s in weight.slices):
            raise ValueError("QuantLinear does not support outlier slices")
        super().__init__(
            weight, perm=None, a_bits=a_bits, act_clip=act_clip, fmt=fmt
        )
