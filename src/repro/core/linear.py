"""Quantized linear executors: dynamic activation quantization + integer GEMM.

:class:`AtomLinear` models the full fused pipeline of Figs. 7-8:

1. **Reorder** the incoming activation by the calibration permutation
   (fused into the prior operator in the real kernel; functionally a column
   gather here).
2. **Dynamically quantize** each channel slice per token: low-bit symmetric
   with clipping for body groups, INT8 for the outlier tail (or FP16
   passthrough in the ablation variant).
3. **Integer GEMM per slice** with exact integer accumulation (the tensor-core
   MMA), then dequantize with the token-scale x weight-scale outer product and
   accumulate in float (the fused epilogue of Fig. 8).

Execution has two code paths:

- The **fast path** (default, the software analog of Atom's fused kernel)
  stacks all equal-width body groups into one ``(tokens, groups, width)``
  tensor, quantizes every group in a single vectorized pass, folds the
  per-token group scale into the codes and the per-group weight scale into a
  precomputed ``(groups * width, out)`` weight block, and contracts the whole
  body in ONE flat float64 GEMM.  (A batched per-group integer MMA with a
  scale-outer-product epilogue — the literal reading of Fig. 8 — was measured
  first: its ``(groups, tokens, out)`` partial tensor costs more memory
  traffic than the GEMM saves, and NumPy's batched matmul cannot fuse the
  epilogue the way a real kernel does.  Folding both scales into the operands
  moves the group reduction inside one BLAS call; the reassociation changes
  results by ~1e-15 normed relative vs the slice loop.)  The INT8 outlier
  tail, any ragged body group and FP16 passthrough slices execute as at most
  a couple of extra GEMMs; those integer MMAs run in float32 whenever the
  largest possible partial sum fits the float32 exact-integer range (< 2^24)
  — integer accumulation is exact there, so float64 buys nothing — and fall
  back to float64 otherwise (and always for minifloat grids, whose products
  are not integers).
- The **reference path** (``fast=False``) is the original per-slice Python
  loop, kept as the equivalence oracle and the "before" baseline of the
  ``repro bench`` microbenchmarks.

When a telemetry sink (:mod:`repro.serving.telemetry`) is attached via the
``telemetry`` attribute, the fast path emits one ``IterationSample`` per call
with ``t_quant`` (dynamic quantization) and ``t_dense`` (GEMM + epilogue)
wall-times, so existing trace tooling attributes quantize-vs-GEMM cost with
no extra instrumentation.

:class:`QuantLinear` is the same machinery with no reorder and no outlier
tail — the executor used by RTN / SmoothQuant / W8A8-style baselines.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro.core.gptq import SlicedWeight, _fp_grid
from repro.core.groups import GroupSlice
from repro.models.llama import LinearImpl, rowwise_matmul
from repro.quant.dtypes import IntFormat

__all__ = ["AtomLinear", "QuantLinear"]

# Largest integer magnitude float32 represents exactly; integer GEMMs whose
# worst-case partial sum stays below this run on float32 without any rounding.
_F32_EXACT_LIMIT = float(1 << 24)


def _dynamic_act_quant(
    x: np.ndarray, bits: int, clip: float, fmt: str, axis: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Per-token symmetric quantization of activation slices along ``axis``.

    Returns ``(codes, scale)`` with ``scale`` keeping a size-1 ``axis`` (for
    the default 2-D per-slice call: shape ``(tokens, 1)``).  The same formula
    vectorizes over a stacked ``(tokens, groups, width)`` tensor with
    ``axis=2``.  ``fmt="mx"`` restricts scales to powers of two
    (MX/microscaling, §6).
    """
    amax = np.abs(x).max(axis=axis, keepdims=True)
    amax = np.maximum(amax, 1e-12)
    if fmt == "int":
        f = IntFormat(bits)
        scale = 2.0 * amax / (f.n_levels - 1) * clip
        codes = np.clip(np.round(x / scale), f.qmin, f.qmax)
        return codes, scale
    if fmt == "mx":
        f = IntFormat(bits)
        scale = np.exp2(np.ceil(np.log2(clip * amax / f.qmax)))
        codes = np.clip(np.round(x / scale), f.qmin, f.qmax)
        return codes, scale
    grid = _fp_grid(bits)
    scale = amax / grid.max_value * clip
    return grid.round(x / scale), scale


class AtomLinear(LinearImpl):
    """Mixed-precision, group-quantized linear with channel reordering."""

    def __init__(
        self,
        weight: SlicedWeight,
        *,
        perm: np.ndarray | None,
        a_bits: int,
        act_clip: float,
        fmt: str = "int",
        out_features: int | None = None,
        fast: bool = True,
    ) -> None:
        self.weight = weight
        self.perm = None if perm is None else np.asarray(perm, dtype=np.int64)
        self.a_bits = a_bits
        self.act_clip = act_clip
        self.fmt = fmt
        self.fast = fast
        #: Optional telemetry sink; the fast path emits one IterationSample
        #: per call with t_quant / t_dense when this is an enabled recorder.
        self.telemetry = None
        self._out = (
            out_features if out_features is not None else weight.codes[0].shape[0]
        )
        self._in = sum(s.width for s in weight.slices)
        if self.perm is not None and len(self.perm) != self._in:
            raise ValueError("permutation length != in_features")
        # Legacy float64 transposed blocks, built lazily: only the reference
        # path (equivalence oracle / "before" benchmarks) needs them.
        self._wT_f64: list[np.ndarray] | None = None
        self._wscaleT = [
            None if s is None else s.T.copy() for s in weight.scales
        ]
        self._build_fast_path()

    # ------------------------------------------------------------------ #
    # Construction-time fast-path layout
    # ------------------------------------------------------------------ #
    def _act_bits(self, s: GroupSlice) -> int:
        return self.a_bits if not s.is_outlier else (s.bits or 8)

    def _gemm_dtype(self, s: GroupSlice) -> type:
        """float32 when integer accumulation is provably exact, else float64."""
        sfmt = self.weight.slice_fmt(s)
        if sfmt == "fp":
            return np.float64  # minifloat products are not integers
        a_max = 1 << (self._act_bits(s) - 1)  # |qmin| bounds the magnitude
        w_max = 1 << (s.bits - 1)
        if s.width * a_max * w_max < _F32_EXACT_LIMIT:
            return np.float32
        return np.float64

    def _build_fast_path(self) -> None:
        w = self.weight
        body = [
            i
            for i, s in enumerate(w.slices)
            if s.bits is not None and not s.is_outlier
        ]
        stack: list[int] = []
        if body:
            # Stack the dominant (width, bits, fmt) population of body groups
            # into one batched GEMM; stragglers (e.g. a ragged final group)
            # take the per-slice path.
            sig_of = lambda i: (
                w.slices[i].width,
                w.slices[i].bits,
                w.slice_fmt(w.slices[i]),
            )
            sig = Counter(sig_of(i) for i in body).most_common(1)[0][0]
            stack = [i for i in body if sig_of(i) == sig]
        self._stack_idx = stack
        self._rest_idx = [i for i in range(len(w.slices)) if i not in set(stack)]
        self._stack_w = None
        if stack:
            s0 = w.slices[stack[0]]
            self._stack_width = s0.width
            self._stack_fmt = w.slice_fmt(s0)
            # (G * width, out) flat weight block with the per-group weight
            # scale folded in: row g*width+s holds codes[g][:, s] * scale[g].
            # One dgemm then contracts every body group at once; the
            # per-token group scale is folded into the codes at call time.
            self._stack_w = np.concatenate(
                [
                    w.codes[i].T.astype(np.float64)
                    * np.asarray(w.scales[i], dtype=np.float64)[:, 0]
                    for i in stack
                ]
            )
            cols = np.concatenate(
                [np.arange(w.slices[i].start, w.slices[i].stop) for i in stack]
            )
            # Contiguous ascending runs (the usual layout: body groups first)
            # gather with a zero-copy basic slice instead of fancy indexing.
            contiguous = all(
                w.slices[stack[j + 1]].start == w.slices[stack[j]].stop
                for j in range(len(stack) - 1)
            )
            if contiguous:
                self._stack_cols = None
                self._stack_span = (w.slices[stack[0]].start, w.slices[stack[-1]].stop)
            else:
                self._stack_cols = cols
                self._stack_span = None
        # Per-slice transposed blocks for the leftover slices.
        self._rest_wT = {}
        for i in self._rest_idx:
            s = w.slices[i]
            if w.scales[i] is None:
                # FP16 passthrough: high-precision operand, float64 GEMM.
                self._rest_wT[i] = w.codes[i].T.astype(np.float64)
            else:
                self._rest_wT[i] = w.codes[i].T.astype(self._gemm_dtype(s))

    @property
    def out_features(self) -> int:
        return self._out

    @property
    def in_features(self) -> int:
        return self._in

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D activations, got shape {x.shape}")
        if self.perm is not None:
            x = x[:, self.perm]
        y = self._forward_fast(x) if self.fast else self._forward_reference(x)
        return y.astype(np.float32)

    def forward_rowwise(self, x: np.ndarray) -> np.ndarray:
        """Batch-size-invariant forward: row ``i`` == ``self(x[i:i+1])[0]``.

        Identical pipeline to :meth:`__call__` — quantization and dequant
        epilogues are already per-token — but every GEMM contracts through
        :func:`~repro.models.llama.rowwise_matmul`, so each row keeps the
        accumulation order of its own single-row call regardless of how many
        requests share the batch.  The reference path falls back to the
        generic per-row loop (it is the frozen oracle; no need to thread the
        flag through it).
        """
        if not self.fast:
            return LinearImpl.forward_rowwise(self, x)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D activations, got shape {x.shape}")
        if self.perm is not None:
            x = x[:, self.perm]
        return self._forward_fast(x, rowwise=True).astype(np.float32)

    def _forward_fast(self, x: np.ndarray, *, rowwise: bool = False) -> np.ndarray:
        """Vectorized pipeline; float64 output (pre-cast)."""
        mm = rowwise_matmul if rowwise else np.matmul
        w = self.weight
        t0 = time.perf_counter()
        # ---- Phase 1: dynamic activation quantization ------------------ #
        stacked = None
        if self._stack_w is not None:
            if self._stack_cols is None:
                lo, hi = self._stack_span
                xg = x[:, lo:hi]
            else:
                xg = x[:, self._stack_cols]
            xg = xg.reshape(x.shape[0], len(self._stack_idx), self._stack_width)
            codes, scale = _dynamic_act_quant(
                xg, self.a_bits, self.act_clip, self._stack_fmt, axis=2
            )
            stacked = (codes, scale)
        rest = {}
        for i in self._rest_idx:
            s = w.slices[i]
            if w.scales[i] is None:
                continue  # FP16 slice: no quantization
            xs = x[:, s.start : s.stop]
            rest[i] = _dynamic_act_quant(
                xs, self._act_bits(s), self.act_clip, w.slice_fmt(s)
            )
        t1 = time.perf_counter()
        # ---- Phase 2: integer GEMMs + fused dequant epilogue ----------- #
        y = np.zeros((x.shape[0], self._out), dtype=np.float64)
        if stacked is not None:
            codes, scale = stacked
            # Fold the per-token group scale into the codes, then contract
            # all body groups in ONE flat GEMM against the weight block that
            # already carries the per-group weight scales.
            qx = (codes * scale).reshape(x.shape[0], -1)
            y += mm(qx, self._stack_w)
        for i in self._rest_idx:
            s = w.slices[i]
            w_t = self._rest_wT[i]
            if w.scales[i] is None:
                # FP16 slice: both operands stay high precision.
                y += mm(x[:, s.start : s.stop], w_t)
                continue
            codes, scale = rest[i]
            partial = mm(codes.astype(w_t.dtype, copy=False), w_t).astype(
                np.float64, copy=False
            )
            y += partial * scale * self._wscaleT[i]
        t2 = time.perf_counter()
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.iteration_sample(
                t_quant=t1 - t0, t_dense=t2 - t1, t_iter=t2 - t0
            )
        return y

    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        """Original per-slice loop (float64 output, pre-cast).

        This is the equivalence oracle for the fast path and the "before"
        measurement of the perf harness — keep it semantically frozen.
        """
        if self._wT_f64 is None:
            self._wT_f64 = [
                c.astype(np.float64).T.copy() for c in self.weight.codes
            ]
        y = np.zeros((x.shape[0], self._out), dtype=np.float64)
        for s, w_t, ws_t in zip(self.weight.slices, self._wT_f64, self._wscaleT):
            xs = x[:, s.start : s.stop]
            if ws_t is None:
                # FP16 slice: both operands stay high precision.
                y += xs @ w_t
                continue
            bits = self.a_bits if not s.is_outlier else (s.bits or 8)
            fmt = self.weight.slice_fmt(s)
            codes, scale = _dynamic_act_quant(xs, bits, self.act_clip, fmt)
            # Integer MMA + fused dequant-accumulate (Fig. 8 steps 1-3).
            y += (codes @ w_t) * scale * ws_t
        return y

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def dequantized_weight(self) -> np.ndarray:
        """Float weight in the ORIGINAL (un-reordered) column order."""
        w = self.weight.dequantize()
        if self.perm is None:
            return w
        out = np.empty_like(w)
        out[:, self.perm] = w
        return out

    def effective_weight_bits(self) -> float:
        """Average stored bits per weight element, incl. scales."""
        return self.weight.storage_bits() / (self._out * self._in)


class QuantLinear(AtomLinear):
    """Uniform quantized linear (no reorder, no outlier tail).

    Convenience for the baselines: per-token activations, per-output-channel
    (optionally grouped) weights.
    """

    def __init__(
        self,
        weight: SlicedWeight,
        *,
        a_bits: int,
        act_clip: float = 1.0,
        fmt: str = "int",
        fast: bool = True,
    ) -> None:
        if any(s.is_outlier for s in weight.slices):
            raise ValueError("QuantLinear does not support outlier slices")
        super().__init__(
            weight, perm=None, a_bits=a_bits, act_clip=act_clip, fmt=fmt, fast=fast
        )
