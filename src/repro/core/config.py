"""Atom quantization configuration.

Every row of the paper's Table 3 ablation is expressible as an
:class:`AtomConfig`:

===============================  ==============================================
Table 3 row                      config
===============================  ==============================================
W4A4 RTN                         ``AtomConfig.rtn_w4a4()``
+ keep outliers in FP16          ``n_outlier=default, outlier_bits=None``
+ quantize outliers to INT8      ``outlier_bits=8``
+ group size 128                 ``group_size=<model group size>``
+ clipping                       ``act_clip=0.9, weight_clip=0.85``
+ GPTQ                           ``use_gptq=True``
+ quantize KV-cache to INT4      ``kv_bits=4``
===============================  ==============================================

``AtomConfig.paper_default()`` is the full recipe of §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AtomConfig"]


@dataclass(frozen=True)
class AtomConfig:
    """Knobs of the Atom quantization pipeline.

    Attributes
    ----------
    a_bits, w_bits:
        Bit-width of normal-value activations / weights (4 for W4A4).
    fmt:
        ``"int"`` for integer grids, ``"fp"`` for minifloat grids (Table 4's
        FP4 evaluation uses ``fmt="fp"`` with 4 bits).
    n_outlier:
        Number of mixed-precision outlier channels per activation site;
        ``None`` uses the model config's scaled default, ``0`` disables
        mixed precision entirely.
    outlier_bits:
        Precision of the outlier tail: ``8`` for INT8 (Atom's choice),
        ``None`` keeps outliers in FP16 (the intermediate ablation row).
    group_size:
        Fine-grained group size along channels; ``None`` disables group
        quantization (per-token activations / per-output-channel weights).
    act_clip, weight_clip:
        Symmetric clipping factors (§5.1 grid search found 0.9 / 0.85).
    use_gptq:
        Apply GPTQ (Hessian-compensated rounding) to weight bodies.
    kv_bits:
        Asymmetric KV-cache quantization bit-width; ``None`` keeps FP16.
    calib_tokens, calib_seq_len:
        Calibration sampling (paper: 128 random sentences from WikiText2).
    """

    a_bits: int = 4
    w_bits: int = 4
    fmt: str = "int"
    n_outlier: int | None = None
    outlier_bits: int | None = 8
    group_size: int | None = 128
    act_clip: float = 0.9
    weight_clip: float = 0.85
    use_gptq: bool = True
    kv_bits: int | None = 4
    calib_sequences: int = 128
    calib_seq_len: int = 64
    # Extensions beyond the paper's default recipe (see §6 / §4.1):
    outlier_fmt: str | None = None  # None inherits fmt; "fp" => FP8 outliers
    sequential: bool = False  # layer-by-layer calibration on quantized prefix
    act_order: bool = False  # GPTQ activation-order heuristic

    def __post_init__(self) -> None:
        if self.fmt not in ("int", "fp", "mx"):
            raise ValueError(f"fmt must be 'int', 'fp' or 'mx', got {self.fmt!r}")
        if self.outlier_fmt is not None and self.outlier_fmt not in ("int", "fp", "mx"):
            raise ValueError(f"invalid outlier_fmt: {self.outlier_fmt!r}")
        if self.fmt == "fp" and self.a_bits not in (4, 8):
            raise ValueError("fp format supports 4 or 8 bits")
        if self.outlier_fmt == "fp" and self.outlier_bits not in (None, 4, 8):
            raise ValueError("fp outliers support 4 or 8 bits")
        for bits, label in ((self.a_bits, "a_bits"), (self.w_bits, "w_bits")):
            if not 2 <= bits <= 8:
                raise ValueError(f"{label} must be in [2, 8], got {bits}")
        if not 0.0 < self.act_clip <= 1.0 or not 0.0 < self.weight_clip <= 1.0:
            raise ValueError("clip factors must be in (0, 1]")

    # ------------------------------------------------------------------ #
    # Named recipes
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_default(cls, *, bits: int = 4, group_size: int = 128) -> "AtomConfig":
        """The full §5.1 recipe at W{bits}A{bits}."""
        return cls(a_bits=bits, w_bits=bits, group_size=group_size)

    @classmethod
    def rtn_w4a4(cls) -> "AtomConfig":
        """Table 3's first row: naive RTN W4A4, no Atom techniques."""
        return cls(
            a_bits=4,
            w_bits=4,
            n_outlier=0,
            outlier_bits=None,
            group_size=None,
            act_clip=1.0,
            weight_clip=1.0,
            use_gptq=False,
            kv_bits=None,
        )

    def with_(self, **kwargs) -> "AtomConfig":
        """Functional update (``dataclasses.replace`` sugar for ablations)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        """Human-readable scheme label, e.g. ``atom-w4a4-g128``."""
        parts = [f"atom-w{self.w_bits}a{self.a_bits}"]
        if self.fmt != "int":
            parts.append(self.fmt)
        if self.group_size:
            parts.append(f"g{self.group_size}")
        return "-".join(parts)
