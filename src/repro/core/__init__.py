"""The Atom algorithm: accurate W4A4 quantization for LLM serving.

Modules map one-to-one onto the paper's §4 design components:

- :mod:`repro.core.config`    — :class:`AtomConfig`, whose knobs span the full
  ablation space of Table 3 (every row is a config);
- :mod:`repro.core.groups`    — ragged group slices: the channel layout after
  reordering (low-bit body groups + high-bit outlier tail);
- :mod:`repro.core.outliers`  — calibration-based outlier identification and
  the reorder permutation (§4.1, Fig. 7);
- :mod:`repro.core.clipping`  — grid-search clipping factors (§4.3/§5.1);
- :mod:`repro.core.gptq`      — GPTQ weight quantization with group scales;
- :mod:`repro.core.kv_quant`  — asymmetric per-head KV-cache codec (§4.4);
- :mod:`repro.core.linear`    — the quantized linear executors: dynamic
  activation quantization + exact integer GEMM (§4.2, Fig. 8);
- :mod:`repro.core.atom`      — :class:`AtomQuantizer`, the model-level
  pipeline (§4.5, Fig. 6);
- :mod:`repro.core.checkpoint` — crash-safe per-layer checkpoint store for
  the offline pipeline (atomic writes, checksums, typed
  :class:`CheckpointError`).
"""

from repro.core.checkpoint import CheckpointError, CheckpointStore
from repro.core.config import AtomConfig
from repro.core.groups import GroupSlice, make_group_slices
from repro.core.outliers import (
    calibration_activations,
    identify_outliers,
    reorder_permutation,
)
from repro.core.clipping import search_clip
from repro.core.gptq import gptq_quantize
from repro.core.kv_quant import AtomKVCodec
from repro.core.linear import AtomLinear, QuantLinear
from repro.core.atom import AtomQuantizer

__all__ = [
    "AtomConfig",
    "AtomKVCodec",
    "AtomLinear",
    "AtomQuantizer",
    "CheckpointError",
    "CheckpointStore",
    "GroupSlice",
    "QuantLinear",
    "calibration_activations",
    "gptq_quantize",
    "identify_outliers",
    "make_group_slices",
    "reorder_permutation",
    "search_clip",
]
