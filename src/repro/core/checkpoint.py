"""Crash-safe checkpoint store for the offline quantization pipeline.

The Atom pipeline quantizes a model layer by layer (§4.5); on large models
that is by far the longest offline stage, and before this module a crash at
layer ``k`` lost layers ``0..k-1``.  :class:`CheckpointStore` persists one
versioned, checksummed file per quantized layer so
:meth:`~repro.core.atom.AtomQuantizer.quantize` can resume from the last
valid layer — and a resumed run is **bit-identical** to an uninterrupted
one, because the checkpoint stores the exact emitted codes/scales/permutation
(plus, in sequential-resume mode, the carried float32 calibration hidden
state, so no recomputation with different accumulation order ever happens).

Format (one ``layer_{k:05d}.npz`` per layer, plus ``MANIFEST.json``):

- Every array of the layer (per-linear codes/scales/permutation, per-site
  outlier indices, the optional carried hidden state) is stored uncompressed
  via :func:`numpy.savez`.
- A JSON metadata record rides along inside the archive under ``__meta__``:
  schema version, pipeline fingerprint, layer index, the slice layout of
  each linear, scalar report entries, and a SHA-256 **content checksum**
  computed over every array's name, dtype, shape and raw bytes.
- ``MANIFEST.json`` pins the schema version and the **pipeline fingerprint**
  — a hash of the quantization config, model structure and calibration
  tokens.  Resuming with a different config/model/calibration set is an
  error (:class:`CheckpointError`), not a silent wrong answer.

All writes are atomic: tmp file in the destination directory, flush+fsync,
``os.replace``.  A crash mid-write leaves at worst a stale ``*.tmp`` file,
never a torn checkpoint.

Failure surface: every load/validation problem — unreadable archive, flipped
byte (checksum mismatch), schema version skew, fingerprint mismatch,
non-contiguous layer sequence — raises typed :class:`CheckpointError`; the
CLI maps it to a ``--force-restart`` hint and ``repro doctor`` enumerates the
same checks as a pass/fail report.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "atomic_write_bytes",
    "pipeline_fingerprint",
    "validate_checkpoint_dir",
]

CHECKPOINT_SCHEMA = "atom-repro/quant-checkpoint/v1"

_META_KEY = "__meta__"
_MANIFEST = "MANIFEST.json"


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, validated, or loaded."""


# --------------------------------------------------------------------------- #
# Atomic writes + hashing
# --------------------------------------------------------------------------- #
def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + ``os.replace``)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _arrays_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def pipeline_fingerprint(*parts: Any) -> str:
    """Stable hash of heterogeneous pipeline inputs (configs, arrays, strs).

    Arrays hash by dtype/shape/bytes; everything else by canonical JSON.
    Used to pin a checkpoint directory to one exact (config, model,
    calibration) triple.
    """
    h = hashlib.sha256()
    for p in parts:
        if isinstance(p, np.ndarray):
            a = np.ascontiguousarray(p)
            h.update(str(a.dtype).encode())
            h.update(str(a.shape).encode())
            h.update(a.tobytes())
        else:
            h.update(json.dumps(p, sort_keys=True, default=str).encode())
        h.update(b"|")
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------------- #
class CheckpointStore:
    """Per-layer checkpoint directory with atomic writes and checksums."""

    def __init__(
        self,
        directory: "str | Path",
        *,
        fingerprint: str = "",
        create: bool = True,
    ) -> None:
        self.dir = Path(directory)
        self.fingerprint = fingerprint
        if create:
            try:
                self.dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot create checkpoint directory {self.dir}: {exc}"
                ) from exc

    # -- paths ----------------------------------------------------------- #
    def layer_path(self, layer: int) -> Path:
        return self.dir / f"layer_{layer:05d}.npz"

    @property
    def manifest_path(self) -> Path:
        return self.dir / _MANIFEST

    def layers_on_disk(self) -> list[int]:
        out = []
        for p in sorted(self.dir.glob("layer_*.npz")):
            try:
                out.append(int(p.stem.split("_")[1]))
            except (IndexError, ValueError):
                continue
        return out

    # -- manifest / compatibility ---------------------------------------- #
    def _write_manifest(self) -> None:
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
        }
        atomic_write_bytes(
            self.manifest_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
        )

    def read_manifest(self) -> dict:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"checkpoint manifest missing: {self.manifest_path}"
            ) from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc

    def verify_compatible(self) -> None:
        """Raise :class:`CheckpointError` unless the directory matches.

        A fresh/empty directory is compatible (the manifest is written on
        first use).  An existing manifest must match both the schema version
        and this run's pipeline fingerprint.
        """
        if not self.manifest_path.exists():
            if self.layers_on_disk():
                raise CheckpointError(
                    f"checkpoint dir {self.dir} has layer files but no manifest "
                    "(partial or foreign directory); use force_restart"
                )
            return
        m = self.read_manifest()
        if m.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema mismatch in {self.dir}: "
                f"found {m.get('schema')!r}, expected {CHECKPOINT_SCHEMA!r}"
            )
        if self.fingerprint and m.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint fingerprint mismatch in {self.dir}: the directory "
                "was produced by a different config/model/calibration set; "
                "use force_restart to discard it"
            )

    def reset(self) -> None:
        """Discard every checkpoint in the directory (``--force-restart``)."""
        for p in self.dir.glob("layer_*.npz"):
            p.unlink(missing_ok=True)
        for p in self.dir.glob("*.tmp"):
            p.unlink(missing_ok=True)
        self.manifest_path.unlink(missing_ok=True)

    # -- save / load ------------------------------------------------------ #
    def save_layer(
        self, layer: int, arrays: dict[str, np.ndarray], meta: dict
    ) -> Path:
        """Atomically persist one layer's arrays + metadata."""
        if not self.manifest_path.exists():
            self._write_manifest()
        record = dict(meta)
        record["schema"] = CHECKPOINT_SCHEMA
        record["fingerprint"] = self.fingerprint
        record["layer"] = int(layer)
        record["checksum"] = _arrays_checksum(arrays)
        buf = io.BytesIO()
        np.savez(buf, **{_META_KEY: np.array(json.dumps(record))}, **arrays)
        return atomic_write_bytes(self.layer_path(layer), buf.getvalue())

    def load_layer(self, layer: int) -> tuple[dict[str, np.ndarray], dict]:
        """Load and fully validate one layer checkpoint.

        Returns ``(arrays, meta)``.  Any defect — unreadable archive,
        missing metadata, schema/fingerprint skew, checksum mismatch —
        raises :class:`CheckpointError` before any data is handed out.
        """
        path = self.layer_path(layer)
        try:
            with np.load(path, allow_pickle=False) as z:
                if _META_KEY not in z.files:
                    raise CheckpointError(f"{path}: no metadata record")
                meta = json.loads(str(z[_META_KEY]))
                arrays = {k: z[k] for k in z.files if k != _META_KEY}
        except CheckpointError:
            raise
        except FileNotFoundError as exc:
            raise CheckpointError(f"checkpoint missing: {path}") from exc
        except Exception as exc:  # zipfile/json/numpy decode errors
            raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
        if meta.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{path}: schema {meta.get('schema')!r} != {CHECKPOINT_SCHEMA!r}"
            )
        if self.fingerprint and meta.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"{path}: pipeline fingerprint mismatch (different "
                "config/model/calibration); use force_restart"
            )
        if meta.get("layer") != layer:
            raise CheckpointError(
                f"{path}: metadata says layer {meta.get('layer')}, "
                f"filename says {layer}"
            )
        checksum = _arrays_checksum(arrays)
        if checksum != meta.get("checksum"):
            raise CheckpointError(
                f"corrupt checkpoint {path}: content checksum mismatch "
                f"({checksum[:12]} != {str(meta.get('checksum'))[:12]}...)"
            )
        return arrays, meta

    def last_contiguous_layer(self) -> int:
        """Highest layer ``k`` such that layers ``0..k`` all exist on disk.

        Returns ``-1`` for an empty store.  Existence only — validation
        happens at :meth:`load_layer` time so corruption surfaces as a typed
        error, never as a silently shortened resume.
        """
        have = set(self.layers_on_disk())
        k = -1
        while k + 1 in have:
            k += 1
        return k

    # -- validation (repro doctor) ---------------------------------------- #
    def validate(self) -> list[str]:
        """Return a list of problems (empty == healthy)."""
        problems: list[str] = []
        try:
            self.read_manifest()
        except CheckpointError as exc:
            problems.append(str(exc))
        layers = self.layers_on_disk()
        if not layers:
            problems.append(f"{self.dir}: no layer checkpoints found")
            return problems
        if layers != list(range(layers[0], layers[0] + len(layers))) or layers[0] != 0:
            problems.append(
                f"{self.dir}: non-contiguous layer sequence {layers}"
            )
        for layer in layers:
            try:
                self.load_layer(layer)
            except CheckpointError as exc:
                problems.append(str(exc))
        return problems


def validate_checkpoint_dir(directory: "str | Path") -> list[str]:
    """Validate a checkpoint directory without knowing its fingerprint."""
    directory = Path(directory)
    if not directory.is_dir():
        return [f"{directory}: not a directory"]
    store = CheckpointStore(directory, fingerprint="", create=False)
    return store.validate()
