"""Outlier-channel identification and channel reordering (§4.1, Fig. 7).

Outlier channels are identified **offline** from calibration activations:
the ``n_outlier`` channels with the largest square-sum (§5.1).  The reorder
permutation moves them to the end of the channel axis, keeping the remaining
channels in their original relative order — activations stay contiguous for
the low-bit body and the high-bit tail, which is what lets the kernel keep
regular memory access.

Weight matrices are reordered statically with the same indices (a one-time
cost); activation reordering happens at runtime inside the fused operator
(modelled in :class:`repro.core.linear.AtomLinear`).
"""

from __future__ import annotations

import numpy as np

from repro.models.llama import LlamaModel, input_site

__all__ = [
    "identify_outliers",
    "reorder_permutation",
    "calibration_activations",
    "sample_calibration_tokens",
]


def identify_outliers(x: np.ndarray, n_outlier: int) -> np.ndarray:
    """Indices of the ``n_outlier`` channels with the largest square sum.

    ``x`` is a calibration activation matrix ``(tokens, channels)``.
    Returned indices are sorted ascending by magnitude (largest last) so the
    most extreme channels sit at the very end after reordering.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D activations, got shape {x.shape}")
    if not 0 <= n_outlier <= x.shape[1]:
        raise ValueError(f"n_outlier ({n_outlier}) out of range")
    if n_outlier == 0:
        return np.empty(0, dtype=np.int64)
    sq = (x.astype(np.float64) ** 2).sum(axis=0)
    top = np.argpartition(sq, -n_outlier)[-n_outlier:]
    return top[np.argsort(sq[top])]


def reorder_permutation(n_channels: int, outlier_idx: np.ndarray) -> np.ndarray:
    """Permutation placing non-outlier channels first (original order),
    outlier channels last (in the order given)."""
    outlier_idx = np.asarray(outlier_idx, dtype=np.int64)
    if len(np.unique(outlier_idx)) != len(outlier_idx):
        raise ValueError("duplicate outlier indices")
    if len(outlier_idx) and (outlier_idx.min() < 0 or outlier_idx.max() >= n_channels):
        raise ValueError("outlier index out of range")
    mask = np.zeros(n_channels, dtype=bool)
    mask[outlier_idx] = True
    normal = np.flatnonzero(~mask)
    return np.concatenate([normal, outlier_idx])


def sample_calibration_tokens(
    n_sequences: int, seq_len: int, *, seed: int = 42
) -> np.ndarray:
    """Calibration batch: random windows of the synthwiki train split.

    Mirrors §5.1: "128 randomly sampled sentences from WikiText2".
    """
    from repro.data.corpus import corpus_splits
    from repro.data.tokenizer import CharTokenizer

    text, _ = corpus_splits("synthwiki")
    stream = CharTokenizer().encode(text)
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(stream) - seq_len, size=n_sequences)
    return np.stack([stream[s : s + seq_len] for s in starts])


def calibration_activations(
    model: LlamaModel, tokens: np.ndarray
) -> dict[str, np.ndarray]:
    """Capture calibration activations keyed by *input site*.

    All consumers of one activation share reorder indices (and, in MoE
    layers, all experts share them too — the paper's footnote 4), so we key
    on the site rather than the linear.
    """
    captured = model.capture_linear_inputs(tokens)
    sites: dict[str, np.ndarray] = {}
    for linear_name, acts in captured.items():
        site = input_site(linear_name)
        if site not in sites:
            sites[site] = acts
    return sites
