"""Command-line interface.

Usage::

    python -m repro zoo                          # list / pre-train the zoo
    python -m repro quantize -m llama-7b-sim     # quantize + evaluate
    python -m repro ablation -m llama-7b-sim     # Table 3 on one model
    python -m repro serve --scheme Atom-W4A4     # serving simulation
    python -m repro serve --backend numeric --requests 8 --verify
                                                 # real-model serving + oracle
    python -m repro trace --scheme FP16 -o t.jsonl   # serving event trace
    python -m repro trace --chaos 7 -o t.jsonl       # fault-injection trace
    python -m repro bench -o BENCH_inference.json    # fast-path microbenchmarks
    python -m repro bench --serving --quick          # batched numeric decode
    python -m repro bench --pareto --quick           # scheme Pareto sweep
    python -m repro quantize --checkpoint-dir ckpt/  # crash-safe, resumable
    python -m repro doctor --checkpoint-dir ckpt/    # validate on-disk artifacts
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import format_table

__all__ = ["main"]


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.models.config import MODEL_FAMILY
    from repro.models.zoo import load_weights, zoo_cache_dir

    rows = []
    for name, cfg in MODEL_FAMILY.items():
        if args.train:
            load_weights(name, verbose=args.verbose)
            status = "cached"
        else:
            status = "moe" if cfg.is_moe else "dense"
        rows.append([name, cfg.dim, cfg.n_layers, cfg.n_params(), status])
    print(format_table(["model", "dim", "layers", "params", "kind"], rows))
    print(f"cache: {zoo_cache_dir()}")
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from repro.core import AtomConfig, AtomQuantizer, CheckpointError
    from repro.eval import perplexity, zero_shot_suite
    from repro.models.zoo import load_model
    from repro.quant.guards import NumericalError

    model = load_model(args.model)
    cfg = AtomConfig.paper_default().with_(
        a_bits=args.bits,
        w_bits=args.bits,
        kv_bits=min(args.bits, 4) if args.kv else None,
        fmt=args.fmt,
        sequential=args.sequential,
        act_order=args.act_order,
    )
    q = AtomQuantizer(cfg, strict=True if args.strict_guards else None)
    try:
        quant = q.quantize(
            model,
            checkpoint_dir=args.checkpoint_dir,
            force_restart=args.force_restart,
        )
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        print(
            "hint: rerun with --force-restart to discard the incompatible "
            "checkpoint directory, or run `python -m repro doctor "
            f"--checkpoint-dir {args.checkpoint_dir}` to inspect it",
            file=sys.stderr,
        )
        return 2
    except NumericalError as exc:
        print(f"numerical guard tripped (strict mode): {exc}", file=sys.stderr)
        return 3
    print(f"quantized {args.model} with {cfg.label()}")
    print(f"  mean weight reconstruction error: {q.report.mean_weight_error:.4f}")
    print(f"  {q.health.summary()}")
    rows = []
    for corpus in ("synthwiki", "synthptb", "synthc4"):
        rows.append(
            [
                corpus,
                perplexity(model, corpus, eval_chars=4096),
                perplexity(quant, corpus, eval_chars=4096),
            ]
        )
    print(format_table(["corpus", "FP16 ppl", "quantized ppl"], rows))
    if args.zeroshot:
        fp16 = zero_shot_suite(model, n_items=args.items)
        qs = zero_shot_suite(quant, n_items=args.items)
        rows = [[t, 100 * fp16[t], 100 * qs[t]] for t in fp16]
        print(format_table(["task", "FP16 %", "quantized %"], rows))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.eval.ablation import run_accuracy_ablation
    from repro.models.zoo import load_model

    model = load_model(args.model)
    rows = [
        [r.label, r.ppl, r.delta_from_previous]
        for r in run_accuracy_ablation(model, corpus=args.corpus)
    ]
    print(format_table(["technique (cumulative)", "ppl", "delta"], rows))
    return 0


#: ``repro serve --backend numeric`` maps the full-size serving spec names
#: onto the trained zoo analogs the NumPy model can actually execute.
_NUMERIC_ZOO = {
    "llama-7b": "llama-7b-sim",
    "llama-13b": "llama-13b-sim",
    "llama-70b": "llama2-70b-sim",
}


def _resolve_numeric_schemes(scheme_arg: str) -> "tuple[list[str], str | None]":
    """Scheme names for a numeric-backend run, or an error message.

    ``"all"`` expands to every registered scheme with a quantization
    recipe; naming a roofline-only scheme explicitly is the error case.
    """
    from repro.serving.schemes import SCHEMES, numeric_scheme_names

    names = (
        [scheme_arg] if scheme_arg != "all" else numeric_scheme_names()
    )
    unsupported = [s for s in names if not SCHEMES[s].numeric_executable]
    if unsupported:
        return names, (
            f"numeric backend supports {', '.join(numeric_scheme_names())}; "
            f"{', '.join(unsupported)} has no quantization recipe "
            "(roofline-only)"
        )
    return names, None


def _prefix_cache_for(args: argparse.Namespace):
    """A fresh ``PrefixCache`` when ``--prefix-cache`` was given, else None.

    One cache per engine: binding rewires the allocator/backend plumbing,
    so caches are never shared across scheme runs.  Prompts follow the
    multi-round conversation derivation — requests in the same
    conversation (``request_id // 64``) then share token prefixes, which
    is what makes caching them worthwhile.
    """
    if not getattr(args, "prefix_cache", False):
        return None
    from repro.serving import PrefixCache

    return PrefixCache(seed=args.seed)


def _wrap_cluster(args: argparse.Namespace, build):
    """``build()`` once, or ``--replicas`` times behind a cluster router."""
    if getattr(args, "replicas", 1) <= 1:
        return build()
    from repro.serving import ClusterEngine

    return ClusterEngine(
        [build() for _ in range(args.replicas)], router=args.router
    )


def _print_cluster_stats(cluster: "dict | None") -> None:
    if not cluster:
        return
    states = ", ".join(
        f"r{rep['replica']}:{rep['state']}" for rep in cluster["replicas"]
    )
    print(
        f"  cluster: {cluster['n_replicas']} replicas "
        f"({cluster['router']} router), {cluster['rounds']} rounds, "
        f"{cluster['reroutes']} rerouted, {cluster['failed']} failed, "
        f"{cluster['cluster_shed']} cluster-shed  [{states}]"
    )


def _print_prefix_stats(label: str, stats: "dict | None") -> None:
    if not stats:
        return
    print(
        f"  {label}: prefix cache {stats['hits']}/{stats['lookups']} hits "
        f"({stats['hit_rate']:.0%}), {stats['kv_tokens']} KV tokens reused, "
        f"{stats['shared_pages']} shared pages held, "
        f"{stats['evicted_pages']} evicted"
    )


def _cmd_serve_numeric(args: argparse.Namespace) -> int:
    """Serve a real zoo model through the numeric execution backend."""
    import numpy as np

    from repro.data.sharegpt import ShareGPTWorkload
    from repro.models.zoo import load_model
    from repro.serving import SCHEMES, NumericBackend

    if args.tp > 1:
        print("numeric backend does not support tensor parallelism",
              file=sys.stderr)
        return 2
    zoo_name = _NUMERIC_ZOO[args.model]
    scheme_names, err = _resolve_numeric_schemes(args.scheme)
    if err:
        print(err, file=sys.stderr)
        return 2
    model = load_model(zoo_name)
    # Requests must fit the small model's context window.
    max_len = model.config.max_seq_len
    reqs = ShareGPTWorkload(seed=args.seed, max_len=max_len).sample_requests(
        args.requests
    )
    rows = []
    prefix_lines = []
    cluster_lines = []
    clustered = getattr(args, "replicas", 1) > 1
    for name in scheme_names:
        served = SCHEMES[name].quantize(model)

        def build(name=name, served=served):
            return NumericBackend.engine_for(
                served, SCHEMES[name], max_batch=args.batch,
                admission=args.admission, seed=args.seed,
                shed_policy="drop" if clustered else "raise",
                prompts="conversation" if args.prefix_cache else "synthetic",
                prefix_cache=_prefix_cache_for(args),
                cache_aware_preempt=args.cache_aware_preempt,
            )

        engine = _wrap_cluster(args, build)
        r = engine.run(reqs)
        if clustered:
            tokens_of = engine.generated_tokens
            oracle = engine.engines[0].backend.runner.oracle_generate
            cluster_lines.append(r.cluster)
        else:
            tokens_of = engine.backend.generated_tokens
            oracle = engine.backend.runner.oracle_generate
        if r.prefix_cache is not None:
            prefix_lines.append((name, r.prefix_cache))
        verified = "-"
        if args.verify:
            ok = all(
                np.array_equal(
                    tokens_of(q.request_id),
                    oracle(q.request_id, q.prefill_len, q.decode_len),
                )
                for q in reqs
                if r.terminal_states.get(q.request_id) == "finished"
            )
            verified = "ok" if ok else "FAIL"
        rows.append(
            [
                name,
                f"{r.throughput_tokens_per_s:.0f}",
                r.completed_requests,
                r.max_batch,
                r.preemptions,
                verified,
            ]
        )
    print(
        format_table(
            ["scheme", "tokens/s", "finished", "peak batch", "preempt",
             "tokens==generate"],
            rows,
            title=f"{zoo_name} (numeric backend), batch<= {args.batch}, "
            f"{len(reqs)} requests, {args.admission} admission",
        )
    )
    for name, stats in prefix_lines:
        _print_prefix_stats(name, stats)
    for cluster in cluster_lines:
        _print_cluster_stats(cluster)
    if args.verify and any(row[-1] == "FAIL" for row in rows):
        print("numeric serving diverged from the generate oracle",
              file=sys.stderr)
        return 1
    return 0


def _build_open_loop_interactions(args: argparse.Namespace, max_len: int):
    """Arrival schedule for ``repro serve --open-loop`` (deterministic)."""
    from repro.data.sharegpt import ShareGPTWorkload
    from repro.serving import poisson_interactions, sharegpt_interactions

    workload = ShareGPTWorkload(seed=args.seed, max_len=max_len)
    tenants = tuple(f"tenant{i}" for i in range(args.tenants))
    if args.conversations:
        return sharegpt_interactions(
            workload,
            args.requests,
            rate=args.rate,
            seed=args.seed,
            tenants=tenants,
            think_mean_s=args.think,
            deadline_s=args.deadline,
        )
    reqs = workload.sample_requests(args.requests)
    return poisson_interactions(
        reqs,
        rate=args.rate,
        seed=args.seed,
        tenants=tenants,
        deadline_s=args.deadline,
    )


def _cmd_serve_open_loop(args: argparse.Namespace) -> int:
    """Open-loop traffic through the front-end (both backends)."""
    import numpy as np

    from repro.serving import SCHEMES, NumericBackend, OpenLoopFrontend, ServingEngine
    from repro.serving.models import LLAMA_13B, LLAMA_70B, LLAMA_7B
    from repro.serving.parallel import NVLINK, PCIE_4, TPConfig

    numeric = args.backend == "numeric"
    if numeric:
        if args.tp > 1:
            print("numeric backend does not support tensor parallelism",
                  file=sys.stderr)
            return 2
        scheme_names, err = _resolve_numeric_schemes(args.scheme)
        if err:
            print(err, file=sys.stderr)
            return 2
        from repro.models.zoo import load_model

        zoo_name = _NUMERIC_ZOO[args.model]
        model = load_model(zoo_name)
        max_len = model.config.max_seq_len
        model_name = f"{zoo_name} (numeric backend)"
    else:
        specs = {
            "llama-7b": LLAMA_7B,
            "llama-13b": LLAMA_13B,
            "llama-70b": LLAMA_70B,
        }
        scheme_names = (
            [args.scheme] if args.scheme != "all" else list(SCHEMES)
        )
        spec = specs[args.model]
        max_len = 2048
        model_name = f"{spec.name} (analytic backend)"
    interactions = _build_open_loop_interactions(args, max_len)
    tp = None
    if args.tp > 1:
        ic = NVLINK if args.interconnect == "nvlink" else PCIE_4
        tp = TPConfig(args.tp, ic)
    failed = False
    clustered = getattr(args, "replicas", 1) > 1
    for name in scheme_names:
        if numeric:
            served = SCHEMES[name].quantize(model)

            def build(name=name, served=served):
                return NumericBackend.engine_for(
                    served, SCHEMES[name], max_batch=args.batch,
                    admission=args.admission, seed=args.seed,
                    shed_policy="drop",
                    prompts=(
                        "conversation" if args.prefix_cache else "synthetic"
                    ),
                    prefix_cache=_prefix_cache_for(args),
                    cache_aware_preempt=args.cache_aware_preempt,
                )

        else:

            def build(name=name):
                return ServingEngine(
                    spec,
                    SCHEMES[name],
                    max_batch=args.batch,
                    enforce_memory=not args.no_memory_limit,
                    admission=args.admission,
                    tp=tp,
                    shed_policy="drop",
                    prefix_cache=_prefix_cache_for(args),
                    cache_aware_preempt=args.cache_aware_preempt,
                )

        engine = _wrap_cluster(args, build)
        frontend = OpenLoopFrontend(
            engine,
            args.scheduler,
            slo_ttft_s=args.slo_ttft,
            slo_tbt_s=args.slo_tbt,
            max_queue=args.max_queue,
            rate_limit=args.rate_limit,
            rate_limit_burst=args.rate_limit_burst,
        )
        res = frontend.run(interactions)
        r = res.serving
        verified = ""
        if numeric and args.verify:
            if clustered:
                tokens_of = engine.generated_tokens
                oracle = engine.engines[0].backend.runner.oracle_generate
            else:
                tokens_of = engine.backend.generated_tokens
                oracle = engine.backend.runner.oracle_generate
            ok = all(
                np.array_equal(
                    tokens_of(sub.request_id),
                    oracle(
                        sub.request_id,
                        sub.request.prefill_len,
                        sub.request.decode_len,
                    ),
                )
                for sub in res.submissions
                if r.terminal_states.get(sub.request_id) == "finished"
            )
            verified = (
                "  tokens==generate: ok" if ok else "  tokens==generate: FAIL"
            )
            failed = failed or not ok
        print(
            f"{model_name}  scheme={name}  scheduler={res.scheduler}  "
            f"rate={args.rate}/s  {res.submitted} submitted "
            f"({res.interactions} interactions, "
            f"{res.interactions_completed} completed)"
        )
        limited = (
            f"  rate_limited={res.rate_limited}"
            if args.rate_limit is not None
            else ""
        )
        print(
            f"  tput={r.throughput_tokens_per_s:.0f} tok/s  "
            f"finished={r.completed_requests}  timed_out={r.timed_out}  "
            f"shed={r.shed}{limited}  preempt={r.preemptions}  "
            f"goodput={res.slo.overall.goodput_rps:.3f} req/s  "
            f"attainment={res.slo.overall.attainment:.1%}{verified}"
        )
        _print_cluster_stats(r.cluster)
        _print_prefix_stats(name, r.prefix_cache)
        print(res.slo.table())
        print()
    if failed:
        print("numeric serving diverged from the generate oracle",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.data.sharegpt import ShareGPTWorkload
    from repro.serving import SCHEMES, ServingEngine
    from repro.serving.models import LLAMA_13B, LLAMA_70B, LLAMA_7B

    from repro.serving.parallel import NVLINK, PCIE_4, TPConfig

    if args.open_loop:
        return _cmd_serve_open_loop(args)
    if args.backend == "numeric":
        return _cmd_serve_numeric(args)

    specs = {"llama-7b": LLAMA_7B, "llama-13b": LLAMA_13B, "llama-70b": LLAMA_70B}
    spec = specs[args.model]
    tp = None
    if args.tp > 1:
        ic = NVLINK if args.interconnect == "nvlink" else PCIE_4
        tp = TPConfig(args.tp, ic)
    schemes = (
        [SCHEMES[args.scheme]] if args.scheme != "all" else list(SCHEMES.values())
    )
    reqs = ShareGPTWorkload(seed=args.seed, max_len=2048).sample_requests(
        args.requests
    )
    rows = []
    prefix_lines = []
    cluster_lines = []
    clustered = getattr(args, "replicas", 1) > 1
    for scheme in schemes:

        def build(scheme=scheme):
            return ServingEngine(
                spec,
                scheme,
                max_batch=args.batch,
                enforce_memory=not args.no_memory_limit,
                admission=args.admission,
                tp=tp,
                shed_policy="drop" if clustered else "raise",
                prefix_cache=_prefix_cache_for(args),
                cache_aware_preempt=args.cache_aware_preempt,
            )

        engine = _wrap_cluster(args, build)
        r = engine.run(reqs)
        if r.prefix_cache is not None:
            prefix_lines.append((scheme.name, r.prefix_cache))
        if clustered:
            cluster_lines.append(r.cluster)
        rows.append(
            [
                scheme.name,
                f"{r.throughput_tokens_per_s:.0f}",
                f"{r.mean_decode_latency_s * 1e3:.1f}",
                f"{r.mean_ttft_s:.2f}",
                r.max_batch,
                r.preemptions,
            ]
        )
    print(
        format_table(
            ["scheme", "tokens/s", "latency ms", "TTFT s", "peak batch", "preempt"],
            rows,
            title=f"{spec.name} (analytic backend), batch<= {args.batch}, "
            f"{len(reqs)} requests, {args.admission} admission",
        )
    )
    for name, stats in prefix_lines:
        _print_prefix_stats(name, stats)
    for cluster in cluster_lines:
        _print_cluster_stats(cluster)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.data.sharegpt import ShareGPTWorkload
    from repro.serving import SCHEMES, ServingEngine, TraceRecorder
    from repro.serving.faults import FaultPlan
    from repro.serving.models import LLAMA_13B, LLAMA_70B, LLAMA_7B
    from repro.serving.parallel import NVLINK, PCIE_4, TPConfig
    from repro.serving.telemetry import write_csv, write_jsonl

    specs = {"llama-7b": LLAMA_7B, "llama-13b": LLAMA_13B, "llama-70b": LLAMA_70B}
    spec = specs[args.model]
    tp = None
    if args.tp > 1:
        ic = NVLINK if args.interconnect == "nvlink" else PCIE_4
        tp = TPConfig(args.tp, ic)
    reqs = ShareGPTWorkload(seed=args.seed, max_len=2048).sample_requests(
        args.requests
    )
    faults = None
    degrade_kwargs: dict = {}
    if args.chaos is not None:
        faults = FaultPlan.random(
            args.chaos, request_ids=[r.request_id for r in reqs]
        )
        degrade_kwargs["shed_policy"] = "drop"
        print(f"injecting {faults.describe()}")
    if args.deadline is not None:
        degrade_kwargs["deadline_s"] = args.deadline
        degrade_kwargs["shed_policy"] = "drop"
    recorder = TraceRecorder()
    engine = ServingEngine(
        specs[args.model],
        SCHEMES[args.scheme],
        max_batch=args.batch,
        admission=args.admission,
        tp=tp,
        telemetry=recorder,
        **degrade_kwargs,
    )
    result = engine.run(reqs, faults=faults)
    try:
        write_jsonl(recorder.events, args.output)
        print(f"wrote {len(recorder.events)} events to {args.output}")
        if args.csv:
            write_csv(recorder.events, args.csv)
            print(f"wrote iteration metrics to {args.csv}")
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 2

    s = recorder.summary()
    print(
        format_table(
            ["metric", "value"],
            [
                ["backend", result.backend],
                ["iterations", s.iterations],
                ["admitted / finished", f"{s.admitted} / {s.finished}"],
                ["preemptions", s.preemptions],
                ["mean decode occupancy", f"{s.mean_occupancy:.1f}"],
                ["peak batch", s.peak_running],
                ["mean decode latency (ms)", f"{s.mean_decode_latency_s * 1e3:.2f}"],
                ["p50 / p90 / p99 (ms)",
                 f"{s.p50_decode_latency_s * 1e3:.2f} / "
                 f"{s.p90_decode_latency_s * 1e3:.2f} / "
                 f"{s.p99_decode_latency_s * 1e3:.2f}"],
                ["mean / peak KV utilization",
                 f"{s.mean_kv_utilization:.2f} / {s.peak_kv_utilization:.2f}"],
                ["min free pages", s.min_free_pages],
            ]
            + (
                [
                    ["terminal states",
                     f"finished {result.completed_requests} / "
                     f"timed_out {result.timed_out} / "
                     f"cancelled {result.cancelled} / shed {result.shed}"],
                    ["faults injected / alloc retries",
                     f"{result.faults_injected} / {result.alloc_retries}"],
                ]
                if (args.chaos is not None or args.deadline is not None)
                else []
            ),
            title=f"{spec.name} {args.scheme}, {args.admission} admission, "
            f"{len(reqs)} requests",
        )
    )
    total = sum(s.time_breakdown.values())
    rows = [
        [phase, f"{t:.3f}", f"{100 * t / total:.1f}%"]
        for phase, t in s.time_breakdown.items()
    ]
    if tp:
        rows.append(["  (comm, in dense)", f"{s.comm_time_s:.3f}",
                     f"{100 * s.comm_time_s / total:.1f}%"])
    print()
    print(format_table(["phase", "seconds", "share"], rows,
                       title="Per-phase time (trace-derived)"))
    drift = max(
        abs(s.time_breakdown[k] - result.time_breakdown[k])
        for k in result.time_breakdown
    )
    print(f"\nreconciliation vs ServingResult.time_breakdown: "
          f"max drift {drift:.2e} s")
    return 0


def _cmd_bench_prefix(args: argparse.Namespace) -> int:
    """Warm-vs-cold prefix-cache sweep through the numeric serving backend."""
    from repro.bench.serving_perf import (
        check_prefix_cache_regression,
        format_prefix_rows,
        read_prefix_bench_json,
        run_prefix_cache_bench,
        write_serving_bench_json,
    )

    payload = run_prefix_cache_bench(quick=args.quick)
    print(
        format_table(
            ["run", "decode tokens", "wall s", "tokens/s", "hit rate"],
            format_prefix_rows(payload),
            title="numeric serving backend, "
            f"{payload['conversations']} conversations x "
            f"{payload['turns']} turns, prefix cache warm vs cold"
            + (" (quick)" if args.quick else ""),
        )
    )
    print(f"warm speedup over cold prefill: {payload['warm_speedup']:.2f}x")
    print("tokens verified bit-identical to generate oracle (both runs): "
          f"{payload['verified_bit_identical']}")
    if args.output:
        write_serving_bench_json(payload, args.output)
        print(f"wrote {args.output}")
    if args.check_against:
        try:
            baseline = read_prefix_bench_json(args.check_against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {args.check_against}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_prefix_cache_regression(
            payload, baseline, max_slowdown=args.max_slowdown
        )
        if problems:
            for msg in problems:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def _cmd_bench_pareto(args: argparse.Namespace) -> int:
    """Accuracy-vs-throughput sweep over every registered scheme."""
    from repro.bench.pareto import (
        check_pareto_regression,
        format_pareto_rows,
        read_pareto_bench_json,
        run_pareto_bench,
        write_pareto_bench_json,
    )

    payload = run_pareto_bench(quick=args.quick)
    print(
        format_table(
            ["scheme", "w/a/kv bits", "ppl", "roofline tok/s",
             "numeric tok/s", "weights GB", "KV B/token"],
            format_pareto_rows(payload),
            title=f"scheme Pareto sweep: {payload['model']['zoo']} accuracy, "
            f"{payload['model']['roofline_spec']} roofline"
            + (" (quick)" if args.quick else ""),
        )
    )
    print("* on the (ppl, modeled tokens/s) Pareto front: "
          + ", ".join(payload["pareto_front"]))
    print("tokens verified bit-identical to generate oracle (all schemes): "
          "True")
    if args.output:
        write_pareto_bench_json(payload, args.output)
        print(f"wrote {args.output}")
    if args.check_against:
        try:
            baseline = read_pareto_bench_json(args.check_against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {args.check_against}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_pareto_regression(
            payload, baseline, max_slowdown=args.max_slowdown
        )
        if problems:
            for msg in problems:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def _cmd_bench_serving(args: argparse.Namespace) -> int:
    """Batched-decode microbenchmark through the numeric serving backend."""
    if getattr(args, "prefix_cache", False):
        return _cmd_bench_prefix(args)
    from repro.bench.serving_perf import (
        check_serving_regression,
        format_serving_rows,
        read_serving_bench_json,
        run_serving_bench,
        write_serving_bench_json,
    )

    batched = not getattr(args, "sequential", False)
    payload = run_serving_bench(quick=args.quick, batched=batched)
    print(
        format_table(
            ["batch", "decode tokens", "wall s", "tokens/s"],
            format_serving_rows(payload),
            title="numeric serving backend, "
            + ("fused batched decode" if batched else "sequential decode")
            + (" (quick)" if args.quick else ""),
        )
    )
    print("tokens verified bit-identical to generate oracle: "
          f"{payload['verified_bit_identical']}")
    if args.output:
        write_serving_bench_json(payload, args.output)
        print(f"wrote {args.output}")
    if args.check_against:
        try:
            baseline = read_serving_bench_json(args.check_against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {args.check_against}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_serving_regression(
            payload, baseline, max_slowdown=args.max_slowdown
        )
        if problems:
            for msg in problems:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import (
        check_regression,
        format_rows,
        read_bench_json,
        run_perf_suite,
        trace_decode,
        write_bench_json,
    )

    if getattr(args, "pareto", False):
        return _cmd_bench_pareto(args)
    if args.serving:
        return _cmd_bench_serving(args)

    payload = run_perf_suite(quick=args.quick)
    print(
        format_table(
            ["benchmark", "before", "after", "speedup"],
            format_rows(payload),
            title="quantized-inference fast path"
            + (" (quick)" if args.quick else ""),
        )
    )
    d = payload["benchmarks"]["decode"]
    print(
        f"decode throughput: {d['before_tokens_per_s']:.1f} -> "
        f"{d['after_tokens_per_s']:.1f} tokens/s"
    )
    if args.output:
        write_bench_json(payload, args.output)
        print(f"wrote {args.output}")

    if args.trace:
        from repro.serving import TraceRecorder
        from repro.serving.telemetry import summarize, write_jsonl

        recorder = TraceRecorder()
        steps, seconds = trace_decode(recorder, quick=args.quick)
        write_jsonl(recorder.events, args.trace)
        s = summarize(recorder.events)
        t_quant = s.time_breakdown.get("quant", 0.0)
        t_dense = s.time_breakdown.get("dense", 0.0)
        total = t_quant + t_dense
        print(
            f"wrote {len(recorder.events)} kernel-phase events to {args.trace} "
            f"({steps} decode steps, {seconds:.3f}s)"
        )
        if total > 0:
            print(
                f"linear time split: quantize {100 * t_quant / total:.1f}% / "
                f"GEMM+epilogue {100 * t_dense / total:.1f}%"
            )

    if args.check_against:
        try:
            baseline = read_bench_json(args.check_against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {args.check_against}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_regression(
            payload, baseline, max_slowdown=args.max_slowdown
        )
        if problems:
            for msg in problems:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Validate on-disk pipeline artifacts; exit 1 when anything is corrupt."""
    import math

    checks: list[tuple[str, list[str]]] = []

    if args.checkpoint_dir:
        from repro.core.checkpoint import validate_checkpoint_dir

        checks.append(
            (f"checkpoint {args.checkpoint_dir}",
             validate_checkpoint_dir(args.checkpoint_dir))
        )

    if args.results_dir:
        from repro.bench.artifacts import verify_artifacts

        checks.append(
            (f"results {args.results_dir}", verify_artifacts(args.results_dir))
        )

    for bench in args.bench or ():
        from repro.bench.perf import read_bench_json

        problems: list[str] = []
        try:
            payload = read_bench_json(bench)
        except (OSError, ValueError, KeyError) as exc:
            problems.append(f"unreadable: {exc}")
        else:
            for name, b in payload.get("benchmarks", {}).items():
                for key, val in b.items():
                    if isinstance(val, float) and not math.isfinite(val):
                        problems.append(f"benchmarks.{name}.{key} is {val}")
        checks.append((f"bench {bench}", problems))

    if not checks:
        print("nothing to check: pass --checkpoint-dir, --results-dir, "
              "and/or --bench", file=sys.stderr)
        return 2

    rows = []
    total = 0
    for target, problems in checks:
        rows.append([target, "FAIL" if problems else "ok", len(problems)])
        total += len(problems)
    print(format_table(["target", "status", "problems"], rows,
                       title="repro doctor"))
    for target, problems in checks:
        for msg in problems:
            print(f"  {target}: {msg}", file=sys.stderr)
    if total:
        print(f"\ndoctor: {total} problem(s) found", file=sys.stderr)
        return 1
    print("\ndoctor: all artifacts healthy")
    return 0


def build_parser() -> argparse.ArgumentParser:
    # Scheme choices come from the one registry — registering a new scheme
    # makes it servable/traceable/benchable without touching the CLI.
    from repro.serving.schemes import SCHEMES

    scheme_choices = tuple(SCHEMES)

    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    zoo = sub.add_parser("zoo", help="list or pre-train the model zoo")
    zoo.add_argument("--train", action="store_true", help="train any uncached model")
    zoo.add_argument("-v", "--verbose", action="store_true")
    zoo.set_defaults(func=_cmd_zoo)

    q = sub.add_parser("quantize", help="quantize a zoo model and evaluate it")
    q.add_argument("-m", "--model", default="llama-7b-sim")
    q.add_argument("-b", "--bits", type=int, default=4)
    q.add_argument("--fmt", choices=("int", "fp", "mx"), default="int")
    q.add_argument("--no-kv", dest="kv", action="store_false", help="keep KV FP16")
    q.add_argument("--sequential", action="store_true")
    q.add_argument("--act-order", action="store_true")
    q.add_argument("--zeroshot", action="store_true")
    q.add_argument("--items", type=int, default=40, help="items per zero-shot task")
    q.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="write per-layer checkpoints here and resume from the "
                        "last valid layer on restart")
    q.add_argument("--force-restart", action="store_true",
                   help="discard an incompatible/corrupt checkpoint directory "
                        "instead of failing")
    q.add_argument("--strict-guards", action="store_true",
                   help="raise NumericalError on non-finite values instead of "
                        "sanitize-and-record (CI mode)")
    q.set_defaults(func=_cmd_quantize)

    a = sub.add_parser("ablation", help="run the Table 3 ablation")
    a.add_argument("-m", "--model", default="llama-7b-sim")
    a.add_argument("--corpus", default="synthwiki")
    a.set_defaults(func=_cmd_ablation)

    s = sub.add_parser("serve", help="serving simulation (Fig. 10)")
    s.add_argument("-m", "--model", default="llama-7b",
                   choices=("llama-7b", "llama-13b", "llama-70b"))
    s.add_argument("--scheme", default="all",
                   choices=("all", *scheme_choices))
    s.add_argument("--batch", type=int, default=64)
    s.add_argument("--requests", type=int, default=256)
    s.add_argument("--admission", choices=("reserve", "dynamic"), default="reserve")
    s.add_argument("--no-memory-limit", action="store_true")
    s.add_argument("--tp", type=int, default=1, help="tensor-parallel degree")
    s.add_argument("--interconnect", choices=("nvlink", "pcie"), default="nvlink")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", choices=("analytic", "numeric"),
                   default="analytic",
                   help="analytic: roofline cost simulation of the full-size "
                        "model; numeric: actually execute the trained zoo "
                        "analog through the engine (real tokens, small "
                        "--requests recommended)")
    s.add_argument("--open-loop", action="store_true",
                   help="open-loop traffic: requests arrive over virtual "
                        "time instead of being handed over up front")
    s.add_argument("--scheduler", choices=("fcfs", "sjf", "edf", "fair"),
                   default="fcfs",
                   help="queue policy for --open-loop (default fcfs)")
    s.add_argument("--rate", type=float, default=2.0, metavar="REQ_PER_S",
                   help="Poisson arrival rate in simulated req/s "
                        "(--open-loop; default 2.0)")
    s.add_argument("--tenants", type=int, default=1,
                   help="number of round-robin tenants (--open-loop)")
    s.add_argument("--conversations", action="store_true",
                   help="submit multi-round ShareGPT conversations as "
                        "interactions (--requests then counts conversations)")
    s.add_argument("--think", type=float, default=0.0, metavar="SECONDS",
                   help="mean think time between conversation turns")
    s.add_argument("--slo-ttft", type=float, default=None, metavar="SECONDS",
                   help="TTFT SLO threshold for goodput accounting")
    s.add_argument("--slo-tbt", type=float, default=None, metavar="SECONDS",
                   help="TBT SLO threshold for goodput accounting")
    s.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="relative per-request deadline (enforced; feeds EDF)")
    s.add_argument("--max-queue", type=int, default=None, metavar="N",
                   help="shed arrivals beyond N waiting requests "
                        "(open-loop admission control)")
    s.add_argument("--verify", action="store_true",
                   help="numeric backend only: re-check every finished "
                        "request's tokens against per-request "
                        "LlamaModel.generate (the bit-identity oracle)")
    s.add_argument("--prefix-cache", action="store_true",
                   help="enable the radix-tree prefix cache: matched prompt "
                        "prefixes resume from shared KV pages instead of "
                        "re-prefilling (prompts switch to the multi-round "
                        "conversation derivation so prefixes repeat; "
                        "pairs well with --conversations)")
    s.add_argument("--cache-aware-preempt", action="store_true",
                   help="prefer preempting requests whose prompt prefix is "
                        "interned in the prefix cache (their recompute "
                        "resumes from shared KV, so the eviction is cheap)")
    s.add_argument("--replicas", type=int, default=1, metavar="N",
                   help="serve through N independent engine replicas behind "
                        "a health-checked cluster router (default 1: bare "
                        "engine, no cluster layer)")
    s.add_argument("--router", default="round-robin",
                   choices=("round-robin", "least-kv", "affinity"),
                   help="cluster routing policy for --replicas > 1 "
                        "(affinity pins conversations to replicas)")
    s.add_argument("--rate-limit", type=float, default=None,
                   metavar="REQ_PER_S",
                   help="per-tenant token-bucket admission rate for "
                        "--open-loop; over-budget arrivals are shed on "
                        "arrival with a typed terminal")
    s.add_argument("--rate-limit-burst", type=float, default=None,
                   metavar="TOKENS",
                   help="token-bucket burst capacity "
                        "(default max(1, RATE))")
    s.set_defaults(func=_cmd_serve)

    t = sub.add_parser(
        "trace", help="run a serving workload with telemetry and dump the trace"
    )
    t.add_argument("-m", "--model", default="llama-7b",
                   choices=("llama-7b", "llama-13b", "llama-70b"))
    t.add_argument("--scheme", default="Atom-W4A4",
                   choices=scheme_choices)
    t.add_argument("--batch", type=int, default=64)
    t.add_argument("--requests", type=int, default=128)
    t.add_argument("--admission", choices=("reserve", "dynamic"), default="dynamic")
    t.add_argument("--tp", type=int, default=1, help="tensor-parallel degree")
    t.add_argument("--interconnect", choices=("nvlink", "pcie"), default="nvlink")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("-o", "--output", default="trace.jsonl",
                   help="JSONL trace output path")
    t.add_argument("--csv", default=None,
                   help="also write per-iteration metrics to this CSV path")
    t.add_argument("--chaos", type=int, default=None, metavar="SEED",
                   help="inject a seeded random FaultPlan (page-pool "
                        "shrinkage, cancellations, stragglers, transient "
                        "allocator failures) and record the failure timeline")
    t.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="per-request deadline; late requests reach the "
                        "timed_out terminal state instead of finishing")
    t.set_defaults(func=_cmd_trace)

    b = sub.add_parser(
        "bench",
        help="fast-path microbenchmarks (linear/prefill/decode/quantize)",
    )
    b.add_argument("--quick", action="store_true",
                   help="reduced reps/steps (CI smoke mode)")
    b.add_argument("-o", "--output", default=None,
                   help="write BENCH_inference.json payload here")
    b.add_argument("--check-against", default=None, metavar="BASELINE",
                   help="fail (exit 1) if decode throughput regresses vs this "
                        "committed BENCH_inference.json")
    b.add_argument("--max-slowdown", type=float, default=2.0,
                   help="regression threshold for --check-against")
    b.add_argument("--trace", default=None, metavar="JSONL",
                   help="also write a kernel-phase telemetry trace "
                        "(quantize vs GEMM time per linear call)")
    b.add_argument("--sequential", action="store_true",
                   help="with --serving: decode per-request (decode_one "
                        "loop) instead of the fused cross-request batched "
                        "path — the 'before' comparison for the batching "
                        "speedup")
    b.add_argument("--serving", action="store_true",
                   help="run the batched-decode microbenchmark through the "
                        "numeric serving backend instead (tokens/s vs batch "
                        "size; -o/--check-against then use the "
                        "BENCH_serving_numeric.json schema)")
    b.add_argument("--prefix-cache", action="store_true",
                   help="with --serving: warm-vs-cold prefix-cache sweep "
                        "over multi-round conversations instead "
                        "(-o/--check-against then use the "
                        "BENCH_prefix_cache.json schema)")
    b.add_argument("--pareto", action="store_true",
                   help="accuracy-vs-throughput sweep over every registered "
                        "scheme: zoo perplexity + roofline and numeric "
                        "throughput per scheme (-o/--check-against then use "
                        "the BENCH_pareto.json schema)")
    b.set_defaults(func=_cmd_bench)

    d = sub.add_parser(
        "doctor",
        help="validate checkpoint dirs, results dirs, and bench payloads",
    )
    d.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="quantization checkpoint directory to validate")
    d.add_argument("--results-dir", default=None, metavar="DIR",
                   help="benchmark results directory (manifest-verified)")
    d.add_argument("--bench", action="append", default=None, metavar="JSON",
                   help="BENCH_*.json payload to validate (repeatable)")
    d.set_defaults(func=_cmd_doctor)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
