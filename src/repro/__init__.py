"""Reproduction of *Atom: Low-Bit Quantization for Efficient and Accurate LLM Serving*.

Subpackages
-----------
- :mod:`repro.quant`     — quantization primitives (formats, uniform quantizers, kernels)
- :mod:`repro.core`      — the Atom algorithm (outliers, reordering, mixed precision,
  group quantization, clipping, GPTQ, KV-cache quantization, model pipeline)
- :mod:`repro.baselines` — RTN, SmoothQuant, OmniQuant-lite, QLLM-lite, W8A8, W4A16
- :mod:`repro.tensor`    — NumPy reverse-mode autograd engine (training substrate)
- :mod:`repro.models`    — Llama-family transformer + MoE variant, trainer, model zoo
- :mod:`repro.data`      — synthetic corpora, tokenizer, ShareGPT-like workloads, tasks
- :mod:`repro.eval`      — perplexity / zero-shot / ablation harnesses
- :mod:`repro.serving`   — GPU roofline cost model + discrete-event serving simulator
- :mod:`repro.bench`     — table/figure rendering shared by the benchmark suite
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
