"""Uniform symmetric / asymmetric quantization (Eq. 1-3 of the paper).

Symmetric quantization (used by Atom for weights and activations)::

    s      = 2 * max(|X|) / (2^n - 1) * c          # c is the clipping factor
    X_bar  = clamp(round(X / s), -2^(n-1), 2^(n-1) - 1)

Asymmetric quantization (used by Atom for the KV-cache)::

    s      = (max(X) - min(X)) / (2^n - 1) * c
    z      = round(-min(X) / s)
    X_bar  = clamp(round(X / s) + z, 0, 2^n - 1)

All functions are vectorized over arbitrary scale shapes: ``scale`` (and
``zero``) must broadcast against ``x``.

Degenerate inputs (all-zero or constant channels) would produce zero scales
whose reciprocals explode; the scale computations clamp to a tiny epsilon so
such groups round-trip exactly (``0 / eps`` rounds to code 0, dequantizes to
0).  Pass a :class:`~repro.quant.guards.QuantHealthReport` via ``health`` to
additionally *record* every clamped scale (and any non-finite input) as a
typed diagnostic — the default ``health=None`` path is bit-identical to the
pre-guard implementation.
"""

from __future__ import annotations

import numpy as np

from repro.quant.dtypes import IntFormat
from repro.quant.granularity import Granularity, group_view, reduction_axes
from repro.quant.guards import QuantHealthReport, check_finite, count_degenerate_scales
from repro.quant.qtensor import QuantizedTensor

__all__ = [
    "symmetric_scale",
    "asymmetric_params",
    "quantize_symmetric",
    "quantize_asymmetric",
    "dequantize",
    "quantize_tensor",
]

# Guards against zero-range inputs producing inf scales.
_EPS = 1e-12


def symmetric_scale(
    x: np.ndarray,
    fmt: IntFormat,
    *,
    clip: float = 1.0,
    axis: tuple[int, ...] | None = None,
    health: QuantHealthReport | None = None,
    where: str = "activations",
) -> np.ndarray:
    """Compute the symmetric scale over ``axis`` (keepdims), Eq. (3).

    ``clip`` < 1 shrinks the dynamic range, trading clamping error of a few
    large values for lower rounding error everywhere else (§4.3).
    """
    if not 0.0 < clip <= 1.0:
        raise ValueError(f"clip factor must be in (0, 1], got {clip}")
    x = np.asarray(x)
    if health is not None:
        check_finite(x, where=where, health=health)
    axes = tuple(range(x.ndim)) if axis is None else axis
    amax = np.abs(x).max(axis=axes, keepdims=True)
    # Paper Eq.: s = 2*max|X| / (2^n - 1) * c.  The factor 2 spreads the range
    # over all 2^n levels; with the signed clamp the effective max level is
    # qmax = 2^(n-1)-1, i.e. s = max|X| / qmax up to the off-by-one in levels.
    scale = (2.0 * amax) / (fmt.n_levels - 1) * clip
    if health is not None:
        count_degenerate_scales(scale, where=where, health=health, eps=_EPS)
    return np.maximum(scale, _EPS)


def asymmetric_params(
    x: np.ndarray,
    fmt: IntFormat,
    *,
    clip: float = 1.0,
    axis: tuple[int, ...] | None = None,
    health: QuantHealthReport | None = None,
    where: str = "activations",
) -> tuple[np.ndarray, np.ndarray]:
    """Compute (scale, zero_point) for asymmetric quantization, Eq. (1)."""
    if not 0.0 < clip <= 1.0:
        raise ValueError(f"clip factor must be in (0, 1], got {clip}")
    x = np.asarray(x)
    if health is not None:
        check_finite(x, where=where, health=health)
    axes = tuple(range(x.ndim)) if axis is None else axis
    xmax = x.max(axis=axes, keepdims=True)
    xmin = x.min(axis=axes, keepdims=True)
    scale = (xmax - xmin) / (fmt.n_levels - 1) * clip
    if health is not None:
        count_degenerate_scales(scale, where=where, health=health, eps=_EPS)
    scale = np.maximum(scale, _EPS)
    zero = np.round(-xmin / scale)
    return scale, zero


def quantize_symmetric(x: np.ndarray, scale: np.ndarray, fmt: IntFormat) -> np.ndarray:
    """Round ``x / scale`` and clamp to the signed range of ``fmt``."""
    q = np.round(np.asarray(x) / scale)
    return np.clip(q, fmt.qmin, fmt.qmax).astype(fmt.storage_dtype())


def quantize_asymmetric(
    x: np.ndarray, scale: np.ndarray, zero: np.ndarray, fmt: IntFormat
) -> np.ndarray:
    """Round ``x / scale + z`` and clamp to the unsigned range of ``fmt``.

    Stored in a signed container wide enough for ``[0, 2^n - 1]``; INT8
    asymmetric therefore needs int16 storage.
    """
    q = np.round(np.asarray(x) / scale) + zero
    q = np.clip(q, fmt.umin, fmt.umax)
    dtype = np.int16 if fmt.umax > np.iinfo(np.int8).max else np.int8
    return q.astype(dtype)


def dequantize(
    q: np.ndarray, scale: np.ndarray, zero: np.ndarray | None = None
) -> np.ndarray:
    """Reconstruct floats: ``s * q`` (symmetric) or ``s * (q - z)``."""
    q = np.asarray(q, dtype=np.float64)
    if zero is not None:
        q = q - zero
    return q * scale


def quantize_tensor(
    x: np.ndarray,
    fmt: IntFormat,
    granularity: Granularity,
    *,
    group_size: int = 128,
    clip: float = 1.0,
    symmetric: bool = True,
    health: QuantHealthReport | None = None,
    where: str = "tensor",
) -> QuantizedTensor:
    """One-call quantization of a float tensor at the given granularity.

    This is the workhorse used by RTN, the baselines and Atom's normal-value
    path.  Returns a :class:`QuantizedTensor` that remembers everything
    needed to dequantize (including the grouping reshape).
    """
    x = np.asarray(x, dtype=np.float64)
    grouped = granularity is Granularity.PER_GROUP
    work = group_view(x, group_size) if grouped else x
    axes = reduction_axes(work, granularity)
    if symmetric:
        scale = symmetric_scale(
            work, fmt, clip=clip, axis=axes, health=health, where=where
        )
        zero = None
        data = quantize_symmetric(work, scale, fmt)
    else:
        scale, zero = asymmetric_params(
            work, fmt, clip=clip, axis=axes, health=health, where=where
        )
        data = quantize_asymmetric(work, scale, zero, fmt)
    return QuantizedTensor(
        data=data,
        scale=scale,
        zero=zero,
        fmt=fmt,
        granularity=granularity,
        group_size=group_size if grouped else None,
        orig_shape=x.shape,
    )
