"""Container for a quantized tensor plus its quantization parameters."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.dtypes import IntFormat
from repro.quant.granularity import Granularity, ungroup_view

__all__ = ["QuantizedTensor"]


@dataclass
class QuantizedTensor:
    """A quantized tensor: integer codes + scales (+ zero points).

    ``data`` holds the integer codes.  For :data:`Granularity.PER_GROUP` the
    codes are stored in grouped layout ``(..., n_groups, group_size)``; other
    granularities keep the original layout.  ``scale``/``zero`` broadcast
    against ``data``.
    """

    data: np.ndarray
    scale: np.ndarray
    zero: np.ndarray | None
    fmt: IntFormat
    granularity: Granularity
    group_size: int | None
    orig_shape: tuple[int, ...]

    @property
    def symmetric(self) -> bool:
        return self.zero is None

    @property
    def bits(self) -> int:
        return self.fmt.bits

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.orig_shape))

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float tensor in the original shape."""
        q = self.data.astype(np.float64)
        if self.zero is not None:
            q = q - self.zero
        out = q * self.scale
        if self.granularity is Granularity.PER_GROUP:
            out = ungroup_view(out)
        return out.reshape(self.orig_shape)

    def codes_flat(self) -> np.ndarray:
        """Integer codes reshaped back to the original tensor layout."""
        q = self.data
        if self.granularity is Granularity.PER_GROUP:
            q = ungroup_view(q)
        return q.reshape(self.orig_shape)

    def storage_bits(self) -> int:
        """Total bits used: codes + quantization parameters (FP16 scales).

        Matches the paper's *effective bit* accounting: each scale (and zero
        point) costs 16 bits.
        """
        code_bits = self.n_elements * self.fmt.bits
        n_scales = int(np.prod(self.scale.shape))
        param_bits = n_scales * 16
        if self.zero is not None:
            param_bits += int(np.prod(self.zero.shape)) * 16
        return code_bits + param_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sym" if self.symmetric else "asym"
        return (
            f"QuantizedTensor(shape={self.orig_shape}, fmt={self.fmt.name}, "
            f"{kind}, granularity={self.granularity.value}, "
            f"group_size={self.group_size})"
        )
