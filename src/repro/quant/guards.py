"""Numerical guardrails for the offline quantization pipeline.

The Atom recipe is a long open-loop computation: calibration capture, channel
reordering, clip-factor search, per-layer GPTQ.  Several well-known hazards
can silently poison its outputs — NaN/Inf calibration activations propagate
into Hessians and scales, all-zero channels produce zero (or subnormal) group
scales whose reciprocals explode, and an ill-conditioned Hessian makes the
GPTQ Cholesky factorization fail or emit garbage (the original GPTQ paper
already dampens the Hessian diagonal for exactly this reason).

This module is the shared vocabulary for detecting and reporting those
hazards:

- :class:`GuardEvent` — one typed diagnostic (kind, location, detail).
- :class:`QuantHealthReport` — the per-run accumulator.  Every fallback the
  pipeline takes (escalated Hessian damping, per-column RTN instead of GPTQ,
  clamped degenerate scales, sanitized non-finite inputs) is recorded here so
  a run that *recovered* is distinguishable from a run that was clean.
- :class:`NumericalError` — the typed error strict mode raises instead of
  recording a **fatal** event (non-finite data).  CI runs strict
  (``ATOM_REPRO_STRICT_GUARDS=1``) so silent NaN propagation becomes a hard
  test failure; production/offline runs default to record-and-recover.

Guard kinds
-----------
``nonfinite_input``     NaN/Inf in data entering a quantizer (calibration
                        activations, weights, Hessians).  Fatal in strict
                        mode; sanitized to zero otherwise (recorded).
``nonfinite_output``    NaN/Inf in emitted codes/scales.  Fatal in strict
                        mode; triggers the RTN fallback in GPTQ otherwise.
``degenerate_scale``    zero/subnormal scale from an all-zero or constant
                        channel group, clamped to the epsilon floor.  Never
                        fatal: the clamp round-trips zeros exactly.
``dead_channels``       zero Hessian diagonal entries (channels never
                        activated during calibration); handled by unit
                        curvature, recorded for visibility.
``hessian_damping``     Cholesky needed more damping than the configured
                        ``percdamp`` (escalation ladder 1e-2 -> 1e-1 -> 1.0
                        of the mean diagonal).
``rtn_fallback``        GPTQ could not produce a finite factorization (or
                        finite outputs) at any damping level; the layer fell
                        back to per-column round-to-nearest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "NumericalError",
    "GuardEvent",
    "QuantHealthReport",
    "FATAL_KINDS",
    "FALLBACK_KINDS",
    "DEGENERATE_SCALE_EPS",
    "strict_mode_default",
    "check_finite",
    "count_degenerate_scales",
]

#: Scales at or below this floor are considered degenerate (matches the
#: epsilon clamp used by :mod:`repro.quant.uniform` and the GPTQ slice
#: scales, so "degenerate" == "the clamp actually fired").
DEGENERATE_SCALE_EPS = 1e-12

#: Event kinds that raise :class:`NumericalError` in strict mode.
FATAL_KINDS = frozenset({"nonfinite_input", "nonfinite_output"})

#: Event kinds that represent a recovery path taken instead of the default
#: algorithm (enumerated by the no-NaN acceptance suite).
FALLBACK_KINDS = frozenset({"hessian_damping", "rtn_fallback"})

_VALID_KINDS = frozenset(
    {
        "nonfinite_input",
        "nonfinite_output",
        "degenerate_scale",
        "dead_channels",
        "hessian_damping",
        "rtn_fallback",
    }
)


class NumericalError(ValueError):
    """A fatal numerical hazard detected while guards run in strict mode."""


def strict_mode_default() -> bool:
    """Process-wide strict default: ``ATOM_REPRO_STRICT_GUARDS`` truthy."""
    return os.environ.get("ATOM_REPRO_STRICT_GUARDS", "").lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass(frozen=True)
class GuardEvent:
    """One diagnostic: what happened (``kind``), where, and how much."""

    kind: str
    where: str
    detail: str = ""
    count: int = 1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown guard kind {self.kind!r}")

    def describe(self) -> str:
        parts = [f"{self.kind} @ {self.where}"]
        if self.detail:
            parts.append(self.detail)
        if self.count != 1:
            parts.append(f"x{self.count}")
        return ": ".join(parts[:2]) + ("" if self.count == 1 else f" (x{self.count})")


@dataclass
class QuantHealthReport:
    """Accumulates guard events for one quantization run.

    ``strict=True`` turns fatal kinds into :class:`NumericalError` at the
    point of detection; everything else is always record-only.
    """

    strict: bool = False
    events: list[GuardEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def record(
        self,
        kind: str,
        where: str,
        detail: str = "",
        *,
        count: int = 1,
        value: float = 0.0,
    ) -> GuardEvent:
        ev = GuardEvent(kind=kind, where=where, detail=detail, count=count, value=value)
        self.events.append(ev)
        if self.strict and kind in FATAL_KINDS:
            raise NumericalError(ev.describe())
        return ev

    # ------------------------------------------------------------------ #
    def by_kind(self, kind: str) -> list[GuardEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def fallbacks(self) -> list[GuardEvent]:
        """Every recovery path taken (damping escalations, RTN fallbacks)."""
        return [e for e in self.events if e.kind in FALLBACK_KINDS]

    @property
    def fatal(self) -> list[GuardEvent]:
        return [e for e in self.events if e.kind in FATAL_KINDS]

    @property
    def ok(self) -> bool:
        """True when no fatal (non-finite) hazard was observed."""
        return not self.fatal

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.count
        return out

    def summary(self) -> str:
        """Human-readable one-block summary for CLI output."""
        if not self.events:
            return "quant health: clean (no guard events)"
        lines = ["quant health: " + ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))]
        for e in self.events:
            lines.append(f"  - {e.describe()}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Checks
# --------------------------------------------------------------------------- #
def check_finite(
    arr: np.ndarray,
    *,
    where: str,
    kind: str = "nonfinite_input",
    health: QuantHealthReport | None = None,
) -> bool:
    """Detect NaN/Inf in ``arr``; record (and, in strict mode, raise).

    Returns True when ``arr`` is fully finite.  With no ``health`` report the
    check is detection-only (never raises), so callers on golden paths can
    keep their pre-guard behavior bit-identical.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "fc":
        return True
    bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
    if bad == 0:
        return True
    if health is not None:
        health.record(
            kind,
            where,
            f"{bad}/{arr.size} non-finite values",
            count=bad,
        )
    return False


def count_degenerate_scales(
    scale: np.ndarray,
    *,
    where: str,
    health: QuantHealthReport | None = None,
    eps: float = DEGENERATE_SCALE_EPS,
) -> int:
    """Count zero/subnormal/non-finite scales (pre-clamp); record if any."""
    scale = np.asarray(scale)
    bad = int(np.count_nonzero(~np.isfinite(scale) | (scale <= eps)))
    if bad and health is not None:
        health.record(
            "degenerate_scale",
            where,
            f"{bad}/{scale.size} scales at/below {eps:g} (clamped)",
            count=bad,
        )
    return bad
