"""Quantization primitives: number formats, uniform quantizers, granularity, kernels.

This subpackage is the numeric substrate everything else builds on.  It provides

- :mod:`repro.quant.dtypes` — integer formats (INT2..INT8), FP4 (E2M1), FP8 (E4M3)
  and MX block formats, each able to round a float array onto its representable grid;
- :mod:`repro.quant.uniform` — symmetric/asymmetric uniform quantization following
  Eq. (1)-(3) of the Atom paper, with clipping factors;
- :mod:`repro.quant.granularity` — per-tensor / per-channel / per-token / per-group
  scale computation and the grouping reshape helpers;
- :mod:`repro.quant.qtensor` — the :class:`QuantizedTensor` container;
- :mod:`repro.quant.matmul` — exact integer matmul reference kernels including the
  fused group-dequant GEMM of Fig. 8 and the mixed-precision GEMM;
- :mod:`repro.quant.error` — quantization error metrics and effective-bit accounting;
- :mod:`repro.quant.packing` — INT2/INT4/INT8 bit-packing (the storage layout
  the serving model's byte counts assume).
"""

from repro.quant.dtypes import (
    FP4_E2M1,
    FP8_E4M3,
    FloatFormat,
    IntFormat,
    MXFormat,
    INT2,
    INT3,
    INT4,
    INT6,
    INT8,
    int_format,
)
from repro.quant.granularity import (
    Granularity,
    group_view,
    ungroup_view,
)
from repro.quant.guards import (
    GuardEvent,
    NumericalError,
    QuantHealthReport,
    check_finite,
    count_degenerate_scales,
    strict_mode_default,
)
from repro.quant.qtensor import QuantizedTensor
from repro.quant.uniform import (
    asymmetric_params,
    dequantize,
    quantize_asymmetric,
    quantize_symmetric,
    quantize_tensor,
    symmetric_scale,
)
from repro.quant.matmul import (
    fused_group_gemm,
    mixed_precision_gemm,
    quantized_gemm,
)
from repro.quant.packing import pack_codes, packed_nbytes, unpack_codes
from repro.quant.error import (
    cosine_similarity,
    effective_bits,
    mse,
    relative_error,
    sqnr_db,
)

__all__ = [
    "FP4_E2M1",
    "FP8_E4M3",
    "FloatFormat",
    "Granularity",
    "GuardEvent",
    "NumericalError",
    "QuantHealthReport",
    "check_finite",
    "count_degenerate_scales",
    "strict_mode_default",
    "IntFormat",
    "INT2",
    "INT3",
    "INT4",
    "INT6",
    "INT8",
    "MXFormat",
    "QuantizedTensor",
    "asymmetric_params",
    "cosine_similarity",
    "dequantize",
    "effective_bits",
    "fused_group_gemm",
    "group_view",
    "int_format",
    "mixed_precision_gemm",
    "mse",
    "pack_codes",
    "packed_nbytes",
    "quantize_asymmetric",
    "quantize_symmetric",
    "quantize_tensor",
    "quantized_gemm",
    "relative_error",
    "sqnr_db",
    "symmetric_scale",
    "ungroup_view",
    "unpack_codes",
]
