"""Exact integer matmul reference kernels.

These model — bit-exactly, in NumPy — what Atom's CUDA kernels compute on
tensor cores:

- :func:`quantized_gemm` / :func:`fused_group_gemm` implement the fused GEMM
  of Fig. 8: per-group INT×INT dot products accumulated in int32/int64
  ("Step 1", the MMA on low-bit tensor cores), then dequantized with the
  per-group activation and weight scales and summed in float ("Steps 2-3",
  the fused CUDA-core epilogue).
- :func:`mixed_precision_gemm` adds the INT8 outlier tail: after channel
  reordering the last ``n_outlier`` channels of activations and weights form
  a contiguous block multiplied on INT8 tensor cores, and the two partial
  results are summed.

Weights follow the ``(out_features, in_features)`` layout, so a GEMM computes
``Y = X @ W.T`` with ``X`` of shape ``(tokens, in_features)``.

Only symmetric quantization is supported here: §2 of the paper explains that
asymmetric weight-activation GEMM requires three extra cross-terms, which is
exactly why Atom quantizes dense-layer operands symmetrically (asymmetric
quantization is reserved for the KV-cache, which is dequantized before use).
"""

from __future__ import annotations

import numpy as np

from repro.quant.granularity import Granularity
from repro.quant.qtensor import QuantizedTensor

__all__ = ["quantized_gemm", "fused_group_gemm", "mixed_precision_gemm"]


def _as_row_groups(qt: QuantizedTensor, group_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(codes, scales)`` in grouped layout ``(R, G, S)`` / ``(R, G)``.

    Normalizes per-tensor and per-row ("per-token" for activations,
    "per-output-channel" for weights) tensors into the grouped layout so one
    einsum kernel handles every granularity combination.
    """
    if not qt.symmetric:
        raise ValueError("integer GEMM requires symmetric quantization (see §2)")
    if len(qt.orig_shape) != 2:
        raise ValueError(f"GEMM operands must be 2-D, got shape {qt.orig_shape}")
    rows, cols = qt.orig_shape
    if cols % group_size != 0:
        raise ValueError(f"columns ({cols}) not divisible by group size ({group_size})")
    n_groups = cols // group_size
    codes = qt.codes_flat().astype(np.int64).reshape(rows, n_groups, group_size)
    if qt.granularity is Granularity.PER_GROUP:
        if qt.group_size != group_size:
            raise ValueError(
                f"operand group size {qt.group_size} != GEMM group size {group_size}"
            )
        scales = qt.scale.reshape(rows, n_groups)
    elif qt.granularity is Granularity.PER_TOKEN:
        scales = np.broadcast_to(qt.scale.reshape(rows, 1), (rows, n_groups))
    elif qt.granularity is Granularity.PER_TENSOR:
        scales = np.broadcast_to(qt.scale.reshape(1, 1), (rows, n_groups))
    else:
        raise ValueError(
            f"unsupported GEMM granularity: {qt.granularity} (column-wise scales "
            "cannot be factored out of the inner product)"
        )
    return codes, np.ascontiguousarray(scales, dtype=np.float64)


def _common_group_size(xq: QuantizedTensor, wq: QuantizedTensor) -> int:
    """Pick the contraction group size compatible with both operands."""
    k = xq.orig_shape[-1]
    if k != wq.orig_shape[-1]:
        raise ValueError(
            f"contraction mismatch: activations have {k} channels, "
            f"weights have {wq.orig_shape[-1]}"
        )
    sizes = set()
    for qt in (xq, wq):
        if qt.granularity is Granularity.PER_GROUP:
            sizes.add(qt.group_size)
    if not sizes:
        return k  # both coarse-grained: contract in one group
    if len(sizes) > 1:
        raise ValueError(f"operands have mismatched group sizes: {sorted(sizes)}")
    return sizes.pop()


def fused_group_gemm(xq: QuantizedTensor, wq: QuantizedTensor) -> np.ndarray:
    """Fig. 8's fused GEMM: per-group integer MMA + float dequant-accumulate.

    ``xq``: quantized activations, shape ``(T, K)``; ``wq``: quantized
    weights, shape ``(O, K)``.  Returns float ``(T, O)``.
    """
    group_size = _common_group_size(xq, wq)
    xg, sx = _as_row_groups(xq, group_size)
    wg, sw = _as_row_groups(wq, group_size)
    # Step (1): integer dot product per (token, group, out-channel) triple.
    partial = np.einsum("tgs,ogs->tgo", xg, wg)
    # Steps (2)-(3): dequantize each partial with its two scales, accumulate.
    return np.einsum("tgo,tg,og->to", partial.astype(np.float64), sx, sw)


def quantized_gemm(xq: QuantizedTensor, wq: QuantizedTensor) -> np.ndarray:
    """General quantized GEMM; fast path when neither operand is grouped."""
    for qt in (xq, wq):
        if not qt.symmetric:
            raise ValueError("integer GEMM requires symmetric quantization (see §2)")
        if len(qt.orig_shape) != 2:
            raise ValueError(f"GEMM operands must be 2-D, got shape {qt.orig_shape}")
    if (
        xq.granularity is not Granularity.PER_GROUP
        and wq.granularity is not Granularity.PER_GROUP
    ):
        x = xq.codes_flat().astype(np.int64)
        w = wq.codes_flat().astype(np.int64)
        acc = x @ w.T
        sx = xq.scale.reshape(-1, 1) if xq.granularity is Granularity.PER_TOKEN else xq.scale.reshape(1, 1)
        sw = wq.scale.reshape(1, -1) if wq.granularity is Granularity.PER_TOKEN else wq.scale.reshape(1, 1)
        return acc.astype(np.float64) * sx * sw
    return fused_group_gemm(xq, wq)


def mixed_precision_gemm(
    xq_body: QuantizedTensor,
    xq_outlier: QuantizedTensor,
    wq_body: QuantizedTensor,
    wq_outlier: QuantizedTensor,
) -> np.ndarray:
    """Mixed-precision GEMM: low-bit body plus INT8 outlier tail.

    After reordering, activations/weights are split column-wise into a
    *body* (normal channels, e.g. INT4 grouped) and an *outlier tail*
    (e.g. 128 channels in INT8).  The full product is the sum of the two
    partial GEMMs — this mirrors Atom's kernel, which issues INT4 MMAs for
    the body and INT8 MMAs for the tail within one fused pipeline.
    """
    body = quantized_gemm(xq_body, wq_body)
    tail = quantized_gemm(xq_outlier, wq_outlier)
    if body.shape != tail.shape:
        raise ValueError(
            f"body/tail output mismatch: {body.shape} vs {tail.shape}"
        )
    return body + tail
