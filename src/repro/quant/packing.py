"""Bit-packing utilities for low-bit code storage.

The simulator computes with int8-held codes, but a real serving stack stores
INT4 codes two-per-byte (and INT2 four-per-byte) — this is what the memory
footprints and bandwidth numbers in the serving model assume.  These helpers
provide the exact packed representation plus round-trip unpacking, so
storage-size claims are testable against real buffers.

Packing layout: little-endian within a byte (element 0 in the low nibble),
rows padded to a whole byte.  Signed codes are stored offset-binary
(``code + 2^(bits-1)``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_codes", "unpack_codes", "packed_nbytes"]

_SUPPORTED_BITS = (2, 4, 8)


def packed_nbytes(n_elements: int, bits: int) -> int:
    """Bytes needed to pack ``n_elements`` codes of ``bits`` bits (per row)."""
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
    per_byte = 8 // bits
    return -(-n_elements // per_byte)  # ceil division


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack signed integer codes into a uint8 array (last axis packed).

    ``codes`` must fit the signed ``bits``-bit range.
    """
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
    codes = np.asarray(codes)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if codes.min() < lo or codes.max() > hi:
        raise ValueError(f"codes outside signed {bits}-bit range [{lo}, {hi}]")
    offset = (codes.astype(np.int16) + (1 << (bits - 1))).astype(np.uint8)
    if bits == 8:
        return offset
    per_byte = 8 // bits
    n = codes.shape[-1]
    pad = (-n) % per_byte
    if pad:
        pad_shape = (*codes.shape[:-1], pad)
        offset = np.concatenate(
            [offset, np.zeros(pad_shape, dtype=np.uint8)], axis=-1
        )
    grouped = offset.reshape(*codes.shape[:-1], -1, per_byte)
    shifts = np.arange(per_byte, dtype=np.uint8) * bits
    # Fields are disjoint within the byte, so an in-dtype OR-reduce assembles
    # them without the widening uint16 temp a sum would need.
    return np.bitwise_or.reduce(grouped << shifts, axis=-1)


def unpack_codes(packed: np.ndarray, bits: int, n_elements: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns int8 codes, last axis
    truncated to ``n_elements``."""
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
    packed = np.asarray(packed, dtype=np.uint8)
    if bits == 8:
        out = packed.astype(np.int16) - 128
        return out[..., :n_elements].astype(np.int8)
    per_byte = 8 // bits
    shifts = np.arange(per_byte, dtype=np.uint8) * bits
    mask = (1 << bits) - 1
    fields = (packed[..., :, None] >> shifts) & mask
    flat = fields.reshape(*packed.shape[:-1], -1)
    out = flat.astype(np.int16) - (1 << (bits - 1))
    return out[..., :n_elements].astype(np.int8)
