"""Quantization granularity: per-tensor, per-channel, per-token, per-group.

Terminology follows §2 of the paper: the *channel* dimension is the **last**
dimension of a matrix.  For an activation matrix of shape ``(tokens, channels)``:

- *per-tensor*: one scale for the whole matrix;
- *per-token*: one scale per row (each token's vector);
- *per-channel*: one scale per column (used for weights, whose rows are output
  channels — we quantize weights per output row, which corresponds to
  "per-channel weight quantization" in the literature);
- *per-group*: each row is split into contiguous groups of ``group_size``
  elements, each with its own scale.  Atom uses group size 128.

The helpers here reshape tensors into ``(..., n_groups, group_size)`` views so
that scale computation is a single vectorized reduction.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Granularity", "group_view", "ungroup_view", "reduction_axes"]


class Granularity(enum.Enum):
    """Scale-sharing granularity for uniform quantization."""

    PER_TENSOR = "per_tensor"
    PER_TOKEN = "per_token"  # one scale per row (leading dims collapsed)
    PER_CHANNEL = "per_channel"  # one scale per column
    PER_GROUP = "per_group"  # groups of `group_size` along the last axis

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def group_view(x: np.ndarray, group_size: int) -> np.ndarray:
    """Reshape the last axis of ``x`` into ``(n_groups, group_size)``.

    Raises ``ValueError`` when the last axis is not divisible by the group
    size — Atom pads model dimensions so this never happens in practice, and
    we keep the invariant explicit rather than silently padding.
    """
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    last = x.shape[-1]
    if last % group_size != 0:
        raise ValueError(
            f"last axis ({last}) not divisible by group_size ({group_size})"
        )
    return x.reshape(*x.shape[:-1], last // group_size, group_size)


def ungroup_view(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`group_view`: merge the trailing two axes."""
    if x.ndim < 2:
        raise ValueError("ungroup_view needs at least two trailing axes")
    return x.reshape(*x.shape[:-2], x.shape[-2] * x.shape[-1])


def reduction_axes(x: np.ndarray, granularity: Granularity) -> tuple[int, ...]:
    """Axes to reduce over when computing scales for ``granularity``.

    For :data:`Granularity.PER_GROUP`, callers should first apply
    :func:`group_view` and then reduce over the last axis.
    """
    if granularity is Granularity.PER_TENSOR:
        return tuple(range(x.ndim))
    if granularity is Granularity.PER_TOKEN:
        return (x.ndim - 1,)
    if granularity is Granularity.PER_CHANNEL:
        return tuple(range(x.ndim - 1))
    if granularity is Granularity.PER_GROUP:
        return (x.ndim - 1,)
    raise ValueError(f"unknown granularity: {granularity!r}")
