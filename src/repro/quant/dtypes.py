"""Low-bit number formats used by Atom and its baselines.

Two families are modelled:

``IntFormat``
    Uniform integer grids (INT2..INT8).  A symmetric *n*-bit integer covers
    ``[-2^(n-1), 2^(n-1)-1]``; the asymmetric variant covers ``[0, 2^n - 1]``
    with a zero point.  These are the formats NVIDIA tensor cores accelerate
    (INT8 on Turing+, INT4 on Ampere/Ada), which is what makes Atom's W4A4
    scheme fast in the first place.

``FloatFormat``
    Non-uniform minifloat grids.  ``FP4_E2M1`` is the 4-bit format evaluated
    in Table 4 of the paper (values ``±{0, .5, 1, 1.5, 2, 3, 4, 6}``);
    ``FP8_E4M3`` is the 8-bit format the paper mentions as an alternative
    outlier container.  Rounding onto the grid is round-to-nearest-even on
    the representable values.

``MXFormat``
    Microscaling block format (Rouhani et al., 2023): blocks of ``block_size``
    elements share one power-of-two 8-bit exponent scale, with each element
    stored in a narrow element format.  The paper's §6 notes Blackwell GPUs
    support MX natively, mitigating Atom's group-quantization overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "IntFormat",
    "FloatFormat",
    "MXFormat",
    "INT2",
    "INT3",
    "INT4",
    "INT6",
    "INT8",
    "FP4_E2M1",
    "FP8_E4M3",
    "int_format",
]


@dataclass(frozen=True)
class IntFormat:
    """A uniform signed/unsigned integer grid of ``bits`` bits."""

    bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 16:
            raise ValueError(f"unsupported integer bit-width: {self.bits}")

    @property
    def name(self) -> str:
        return f"INT{self.bits}"

    # Symmetric (signed) range, e.g. INT4 -> [-8, 7].
    @property
    def qmin(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    # Asymmetric (unsigned) range, e.g. INT4 -> [0, 15].
    @property
    def umin(self) -> int:
        return 0

    @property
    def umax(self) -> int:
        return (1 << self.bits) - 1

    @property
    def n_levels(self) -> int:
        return 1 << self.bits

    def storage_dtype(self) -> np.dtype:
        """Smallest NumPy integer dtype that can hold quantized values."""
        return np.dtype(np.int8) if self.bits <= 8 else np.dtype(np.int16)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


INT2 = IntFormat(2)
INT3 = IntFormat(3)
INT4 = IntFormat(4)
INT6 = IntFormat(6)
INT8 = IntFormat(8)

_INT_FORMATS = {f.bits: f for f in (INT2, INT3, INT4, INT6, INT8)}


def int_format(bits: int) -> IntFormat:
    """Return the canonical :class:`IntFormat` for ``bits`` (creating if needed)."""
    return _INT_FORMATS.get(bits) or IntFormat(bits)


def _minifloat_grid(exp_bits: int, man_bits: int, *, has_inf: bool = False) -> np.ndarray:
    """Enumerate the non-negative representable values of a minifloat format.

    Uses the OCP-style convention: no infinities (for E4M3 / E2M1), a single
    NaN encoding is excluded from the grid, subnormals included.
    """
    bias = (1 << (exp_bits - 1)) - 1
    values = [0.0]
    # Subnormals: exponent field 0 -> value = mantissa/2^man_bits * 2^(1-bias)
    for m in range(1, 1 << man_bits):
        values.append((m / (1 << man_bits)) * 2.0 ** (1 - bias))
    # Normals.
    max_exp_field = (1 << exp_bits) - 1 if not has_inf else (1 << exp_bits) - 2
    for e in range(1, max_exp_field + 1):
        for m in range(1 << man_bits):
            # E4M3 OCP reserves exponent=max, mantissa=all-ones for NaN.
            if e == max_exp_field and m == (1 << man_bits) - 1 and exp_bits == 4:
                continue
            values.append((1.0 + m / (1 << man_bits)) * 2.0 ** (e - bias))
    return np.asarray(sorted(set(values)), dtype=np.float64)


@dataclass(frozen=True)
class FloatFormat:
    """A minifloat grid defined by exponent/mantissa widths.

    Rounding onto the grid is round-to-nearest with ties broken toward the
    even-indexed grid value, and saturation at ``max_value``.
    """

    name: str
    exp_bits: int
    man_bits: int

    @property
    def bits(self) -> int:
        return 1 + self.exp_bits + self.man_bits

    @property
    def grid(self) -> np.ndarray:
        """Non-negative representable magnitudes, ascending."""
        return _grid_cache(self.exp_bits, self.man_bits)

    @property
    def max_value(self) -> float:
        return float(self.grid[-1])

    def round(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` elementwise onto the signed grid (with saturation)."""
        x = np.asarray(x, dtype=np.float64)
        mag = np.minimum(np.abs(x), self.max_value)
        grid = self.grid
        # Nearest-value rounding via midpoint bisection.
        mids = (grid[1:] + grid[:-1]) / 2.0
        idx = np.searchsorted(mids, mag, side="right")
        return np.sign(x) * grid[idx]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@lru_cache(maxsize=None)
def _grid_cache(exp_bits: int, man_bits: int) -> np.ndarray:
    return _minifloat_grid(exp_bits, man_bits)


FP4_E2M1 = FloatFormat("FP4_E2M1", exp_bits=2, man_bits=1)
FP8_E4M3 = FloatFormat("FP8_E4M3", exp_bits=4, man_bits=3)


@dataclass(frozen=True)
class MXFormat:
    """Microscaling block format: shared power-of-two scale per block.

    ``element`` is the per-element format (an :class:`IntFormat` or
    :class:`FloatFormat`); ``block_size`` elements along the last axis share
    one 8-bit exponent (E8M0) scale.
    """

    element: "IntFormat | FloatFormat"
    block_size: int = 32

    @property
    def name(self) -> str:
        return f"MX[{self.element.name}x{self.block_size}]"

    def quantize(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantize ``x`` (last axis divisible by ``block_size``).

        Returns ``(codes, scales)`` where ``codes`` are the rounded element
        values *before* applying the shared scale and ``scales`` are
        power-of-two block scales, one per block.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] % self.block_size != 0:
            raise ValueError(
                f"last axis ({x.shape[-1]}) must be divisible by block_size "
                f"({self.block_size})"
            )
        blocks = x.reshape(*x.shape[:-1], -1, self.block_size)
        amax = np.abs(blocks).max(axis=-1, keepdims=True)
        if isinstance(self.element, FloatFormat):
            elem_max = self.element.max_value
        else:
            elem_max = float(self.element.qmax)
        # Shared scale: smallest power of two such that amax/scale fits the
        # element range.
        with np.errstate(divide="ignore"):
            exp = np.log2(np.where(amax > 0, amax / elem_max, 1.0))
        scales = np.exp2(np.ceil(exp))
        scaled = blocks / scales
        if isinstance(self.element, FloatFormat):
            codes = self.element.round(scaled)
        else:
            codes = np.clip(
                np.round(scaled), self.element.qmin, self.element.qmax
            )
        return codes, scales

    def quantize_dequantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` onto the MX grid and return the float reconstruction."""
        codes, scales = self.quantize(x)
        out = codes * scales
        return out.reshape(np.asarray(x).shape)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
