"""Quantization error metrics and effective-bit accounting."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "relative_error", "sqnr_db", "cosine_similarity", "effective_bits"]


def mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Mean squared error between a tensor and its reconstruction."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    return float(np.mean((x - x_hat) ** 2))


def relative_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Frobenius-norm relative error ``||x - x_hat|| / ||x||``."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    denom = np.linalg.norm(x)
    if denom == 0.0:
        return 0.0 if np.linalg.norm(x_hat) == 0.0 else float("inf")
    return float(np.linalg.norm(x - x_hat) / denom)


def sqnr_db(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    x = np.asarray(x, dtype=np.float64)
    noise = mse(x, x_hat)
    signal = float(np.mean(x**2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))


def cosine_similarity(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Cosine similarity between flattened tensors."""
    a = np.asarray(x, dtype=np.float64).ravel()
    b = np.asarray(x_hat, dtype=np.float64).ravel()
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(a, b) / (na * nb))


def effective_bits(
    n_channels: int,
    n_outlier: int,
    low_bits: int,
    *,
    high_bits: int = 8,
    group_size: int = 128,
    scale_bits: int = 16,
) -> float:
    """Average bits per element including quantization parameters.

    Reproduces the paper's footnote 1: with 4096 channels, 128 INT8 outliers,
    group size 128 and FP16 scales, Atom's effective bit-width is
    ``((4096-128)*4 + 128*8)/4096 + 16/128 = 4.25``.
    """
    if n_outlier > n_channels:
        raise ValueError(f"n_outlier ({n_outlier}) exceeds n_channels ({n_channels})")
    if n_channels <= 0 or group_size <= 0:
        raise ValueError("n_channels and group_size must be positive")
    code = ((n_channels - n_outlier) * low_bits + n_outlier * high_bits) / n_channels
    return code + scale_bits / group_size
