"""Minimal reverse-mode autograd engine on NumPy arrays.

This is the training substrate for the model zoo (`repro.models`): since the
reproduction runs without PyTorch or GPUs, the Llama-family models used in
the accuracy experiments are trained with this engine.  It implements exactly
the ops a Llama-style decoder needs — broadcast arithmetic, matmul, reshape /
transpose, embedding gather, SiLU, softmax, RMSNorm, rotary position
embeddings and a fused softmax-cross-entropy — each with a hand-written
backward pass, plus AdamW and gradient-checking utilities.
"""

from repro.tensor.tensor import (
    Tensor,
    add,
    cat,
    cross_entropy,
    embedding,
    matmul,
    mul,
    rms_norm,
    rope,
    silu,
    softmax,
)
from repro.tensor.optim import AdamW, clip_grad_norm
from repro.tensor.gradcheck import gradcheck
from repro.tensor.init import normal_init, zeros_init

__all__ = [
    "AdamW",
    "Tensor",
    "add",
    "cat",
    "clip_grad_norm",
    "cross_entropy",
    "embedding",
    "gradcheck",
    "matmul",
    "mul",
    "normal_init",
    "rms_norm",
    "rope",
    "silu",
    "softmax",
    "zeros_init",
]
