"""AdamW optimizer and gradient clipping for the autograd engine."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["AdamW", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class AdamW:
    """Decoupled weight-decay Adam (Loshchilov & Hutter)."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay:
                p.data *= 1.0 - self.lr * self.weight_decay
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
