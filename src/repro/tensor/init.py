"""Parameter initialization helpers."""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["normal_init", "zeros_init", "ones_init"]


def normal_init(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    *,
    std: float = 0.02,
    name: str = "",
) -> Tensor:
    """Gaussian parameter, GPT-style default std."""
    data = rng.normal(0.0, std, size=shape).astype(np.float32)
    return Tensor(data, requires_grad=True, name=name)


def zeros_init(shape: tuple[int, ...], *, name: str = "") -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True, name=name)


def ones_init(shape: tuple[int, ...], *, name: str = "") -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=True, name=name)
