"""Finite-difference gradient checking for the autograd ops."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    *,
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
    seed: int = 0,
) -> bool:
    """Compare analytic gradients of a scalar-producing ``fn`` to central
    finite differences.

    All ``inputs`` must have ``requires_grad=True``.  Raises ``AssertionError``
    with a diagnostic message on mismatch; returns ``True`` on success.

    Float32 forward passes limit achievable precision, hence the loose default
    tolerances; tests that need tighter bounds can temporarily cast inputs.
    """
    rng = np.random.default_rng(seed)
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()

    for i, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        # Probe a bounded random subset of coordinates for large tensors.
        n_probe = min(t.data.size, 32)
        flat_idx = rng.choice(t.data.size, size=n_probe, replace=False)
        for j in flat_idx:
            idx = np.unravel_index(j, t.data.shape)
            orig = t.data[idx]
            t.data[idx] = orig + eps
            hi = float(fn(*inputs).data)
            t.data[idx] = orig - eps
            lo = float(fn(*inputs).data)
            t.data[idx] = orig
            numeric = (hi - lo) / (2 * eps)
            got = float(analytic[idx])
            if not np.isclose(got, numeric, rtol=rtol, atol=atol):
                raise AssertionError(
                    f"grad mismatch on input {i} at {idx}: "
                    f"analytic={got:.6g} numeric={numeric:.6g}"
                )
    return True
