"""Reverse-mode autograd ``Tensor`` and the NN ops used by the Llama trainer.

Design notes
------------
- Data is float32 (training precision); gradients accumulate in float32.
- The graph is built eagerly: every op records its parents and a closure that
  pushes gradient to them.  ``Tensor.backward`` runs a topological sort.
- Broadcasting follows NumPy; ``_unbroadcast`` reduces gradients back to the
  parent's shape.
- Hot ops (RMSNorm, softmax, cross-entropy, RoPE) are fused with analytic
  backward passes instead of being composed from primitives — per the
  ml-systems guidance of isolating hotspots into dedicated vectorized
  functions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "add",
    "mul",
    "matmul",
    "embedding",
    "silu",
    "softmax",
    "rms_norm",
    "rope",
    "cross_entropy",
    "cat",
]


def _as_array(x, dtype=np.float32) -> np.ndarray:
    if isinstance(x, np.ndarray):
        return x.astype(dtype, copy=False)
    return np.asarray(x, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, name={self.name!r})"

    # ------------------------------------------------------------------ #
    # Graph machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = grad.astype(np.float32, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to scalar seed 1)."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without a seed requires a scalar")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS (avoids recursion limits on
        # deep decoder stacks).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))
        self._accumulate(_as_array(grad))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        return add(self, _wrap(other))

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        return mul(self, _wrap(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-_wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return _wrap(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = _wrap(other)
        return self * other.pow(-1.0)

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, _wrap(other))

    def pow(self, exponent: float) -> "Tensor":
        out_data = self.data.astype(np.float64) ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                local = exponent * self.data.astype(np.float64) ** (exponent - 1)
                self._accumulate(grad * local.astype(np.float32))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, in_shape).copy())

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # ------------------------------------------------------------------ #
    # Shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=np.float32)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )


def _wrap(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def _needs_grad(*tensors: Tensor) -> bool:
    return any(t.requires_grad or t._parents for t in tensors)


# ---------------------------------------------------------------------- #
# Binary primitives
# ---------------------------------------------------------------------- #
def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad, a.shape))
        b._accumulate(_unbroadcast(grad, b.shape))

    return Tensor(
        out_data,
        requires_grad=_needs_grad(a, b),
        _parents=(a, b),
        _backward=backward,
    )


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * b.data, a.shape))
        b._accumulate(_unbroadcast(grad * a.data, b.shape))

    return Tensor(
        out_data,
        requires_grad=_needs_grad(a, b),
        _parents=(a, b),
        _backward=backward,
    )


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Batched matmul ``(..., m, k) @ (..., k, n)``."""
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        ga = grad @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ grad
        a._accumulate(_unbroadcast(ga, a.shape))
        b._accumulate(_unbroadcast(gb, b.shape))

    return Tensor(
        out_data,
        requires_grad=_needs_grad(a, b),
        _parents=(a, b),
        _backward=backward,
    )


def cat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            idx = [slice(None)] * grad.ndim
            idx[axis] = slice(start, stop)
            t._accumulate(grad[tuple(idx)])

    return Tensor(
        out_data,
        requires_grad=_needs_grad(*tensors),
        _parents=tuple(tensors),
        _backward=backward,
    )


# ---------------------------------------------------------------------- #
# NN ops
# ---------------------------------------------------------------------- #
def embedding(weight: Tensor, idx: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by an integer index array."""
    idx = np.asarray(idx)
    out_data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, grad)
        weight._accumulate(full)

    return Tensor(
        out_data,
        requires_grad=weight.requires_grad,
        _parents=(weight,),
        _backward=backward,
    )


def silu(x: Tensor) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)`` (the SwiGLU gate nonlinearity)."""
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out_data = x.data * sig

    def backward(grad: np.ndarray) -> None:
        local = sig * (1.0 + x.data * (1.0 - sig))
        x._accumulate(grad * local)

    return Tensor(
        out_data,
        requires_grad=x.requires_grad or bool(x._parents),
        _parents=(x,),
        _backward=backward,
    )


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with the fused Jacobian-vector backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor(
        out_data,
        requires_grad=x.requires_grad or bool(x._parents),
        _parents=(x,),
        _backward=backward,
    )


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    """Fused RMSNorm: ``x / sqrt(mean(x^2) + eps) * weight``."""
    ms = (x.data.astype(np.float64) ** 2).mean(axis=-1, keepdims=True)
    inv = (1.0 / np.sqrt(ms + eps)).astype(np.float32)
    normed = x.data * inv
    out_data = normed * weight.data

    def backward(grad: np.ndarray) -> None:
        d = x.shape[-1]
        gw = grad * weight.data  # gradient w.r.t. normed input
        # d/dx of x*inv where inv depends on all elements of the last axis.
        dot = (gw * x.data).sum(axis=-1, keepdims=True)
        gx = inv * gw - (inv**3 / d) * x.data * dot
        x._accumulate(gx)
        weight._accumulate(_unbroadcast(grad * normed, weight.shape))

    return Tensor(
        out_data,
        requires_grad=_needs_grad(x, weight),
        _parents=(x, weight),
        _backward=backward,
    )


def rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotary position embedding on the last axis (rotate-half convention).

    ``x`` has shape ``(..., T, D)`` with even ``D``; ``cos``/``sin`` have
    shape ``(T, D/2)`` and are treated as constants (precomputed tables).
    """
    d = x.shape[-1]
    if d % 2 != 0:
        raise ValueError(f"RoPE head dim must be even, got {d}")
    x1 = x.data[..., : d // 2]
    x2 = x.data[..., d // 2 :]
    out_data = np.concatenate([x1 * cos - x2 * sin, x2 * cos + x1 * sin], axis=-1)

    def backward(grad: np.ndarray) -> None:
        g1 = grad[..., : d // 2]
        g2 = grad[..., d // 2 :]
        # Inverse rotation (rotate by -theta).
        gx = np.concatenate([g1 * cos + g2 * sin, g2 * cos - g1 * sin], axis=-1)
        x._accumulate(gx)

    return Tensor(
        out_data,
        requires_grad=x.requires_grad or bool(x._parents),
        _parents=(x,),
        _backward=backward,
    )


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross-entropy, fused log-softmax + NLL.

    ``logits``: ``(N, V)``; ``targets``: int array ``(N,)``.  Targets equal
    to ``-1`` are ignored (padding).
    """
    targets = np.asarray(targets).reshape(-1)
    n, v = logits.data.reshape(-1, logits.shape[-1]).shape
    flat = logits.data.reshape(n, v).astype(np.float64)
    mask = targets >= 0
    count = max(int(mask.sum()), 1)
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logz = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logz
    safe_targets = np.where(mask, targets, 0)
    nll = -logp[np.arange(n), safe_targets]
    loss = float((nll * mask).sum() / count)

    def backward(grad: np.ndarray) -> None:
        p = np.exp(logp)
        p[np.arange(n), safe_targets] -= 1.0
        p *= (mask / count)[:, None]
        logits._accumulate((float(grad) * p).reshape(logits.shape).astype(np.float32))

    return Tensor(
        np.float32(loss),
        requires_grad=logits.requires_grad or bool(logits._parents),
        _parents=(logits,),
        _backward=backward,
    )
