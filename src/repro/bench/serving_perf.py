"""Batched-decode microbenchmark for the numeric serving backend.

``repro bench --serving`` drives the whole numeric serving stack — the
continuous-batching engine, paged KV store, quantized KV codec, and
:class:`~repro.core.linear.AtomLinear` layers — and measures delivered
decode throughput (tokens/s) as the batch size grows from 1 to 16.  The
point of the curve is the serving thesis itself: per-request decode work is
fixed, so tokens/s should scale with the number of concurrently decoding
requests until the scheduler (not the model) is the bottleneck.

The benchmark model is a random-weight GQA config quantized with the full
Atom recipe (no zoo cache / training involved), so the run exercises
quantized GEMMs and 4-bit KV pages exactly as a real numeric serving run
does.  One batch point is additionally verified bit-identical against the
per-request :meth:`~repro.models.llama.LlamaModel.generate` oracle, and the
payload records that fact — a perf baseline that silently stopped computing
the right tokens would be worthless.

``BENCH_serving_numeric.json`` (committed under ``benchmarks/perf/``) is the
regression baseline; ``check_serving_regression`` gates against the
largest-batch throughput with a generous slack factor because wall-clock on
shared CI is noisy.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import AtomConfig, AtomQuantizer
from repro.models.config import ModelConfig

__all__ = [
    "SERVING_BENCH_SCHEMA",
    "SERVING_BENCH_CONFIG",
    "build_serving_bench_model",
    "run_serving_bench",
    "check_serving_regression",
    "write_serving_bench_json",
    "read_serving_bench_json",
    "format_serving_rows",
]

SERVING_BENCH_SCHEMA = "atom-repro/bench-serving-numeric/v1"

#: Small dense GQA model (4 query heads per KV head) — large enough that the
#: grouped attention path and multi-page KV sequences are exercised, small
#: enough that the full batch sweep stays CI-friendly.
SERVING_BENCH_CONFIG = ModelConfig(
    "serving-bench",
    dim=128,
    n_layers=2,
    n_heads=8,
    n_kv_heads=2,
    ffn_dim=256,
    max_seq_len=512,
    group_size=8,
    seed=4321,
)


def build_serving_bench_model(seed: int = 0):
    """Random-weight :data:`SERVING_BENCH_CONFIG` model, Atom-quantized."""
    from repro.bench.perf import build_bench_model

    model = build_bench_model(SERVING_BENCH_CONFIG, seed=seed)
    rng = np.random.default_rng(seed + 1)
    calib = rng.integers(0, SERVING_BENCH_CONFIG.vocab_size, size=(4, 32))
    return AtomQuantizer(AtomConfig.paper_default()).quantize(
        model, calib_tokens=calib
    )


def _requests(batch: int, prefill_len: int, decode_len: int):
    from repro.data.sharegpt import Request

    return [Request(i, prefill_len, decode_len) for i in range(batch)]


def run_serving_bench(
    *, quick: bool = False, seed: int = 0, batched: bool = True
) -> dict:
    """Measure numeric-backend decode throughput across batch sizes.

    Returns the ``BENCH_serving_numeric.json`` payload.  Each batch point
    runs a fresh engine + backend over ``batch`` identical-length requests
    under reserve admission, and reports delivered decode tokens per
    wall-clock second.  With ``batched=True`` (the default) decode runs the
    fused cross-request path (one ``forward_batch`` per engine step);
    ``batched=False`` measures the sequential per-request loop for
    comparison.  The smallest AND largest batch points are verified
    bit-identical against the per-request ``generate`` oracle — the large
    point exercises the fused path at real batch widths.
    """
    from repro.serving import SCHEMES, NumericBackend

    batch_sizes = (1, 8) if quick else (1, 4, 8, 16)
    prefill_len, decode_len = (16, 8) if quick else (24, 32)
    model = build_serving_bench_model(seed=seed)
    scheme = SCHEMES["Atom-W4A4"]

    points = []
    verified = False
    verify_at = {batch_sizes[0], batch_sizes[-1]}
    for batch in batch_sizes:
        engine = NumericBackend.engine_for(
            model,
            scheme,
            max_batch=batch,
            admission="reserve",
            seed=seed,
            batched=batched,
        )
        backend = engine.backend
        reqs = _requests(batch, prefill_len, decode_len)
        t0 = time.perf_counter()
        result = engine.run(reqs)
        wall_s = time.perf_counter() - t0
        if result.completed_requests != batch:
            raise RuntimeError(
                f"serving bench batch={batch}: only "
                f"{result.completed_requests}/{batch} requests finished"
            )
        if batch in verify_at:
            for r in reqs:
                got = backend.generated_tokens(r.request_id)
                want = backend.runner.oracle_generate(
                    r.request_id, r.prefill_len, r.decode_len
                )
                if not np.array_equal(got, want):
                    raise RuntimeError(
                        f"serving bench: batch={batch} request "
                        f"{r.request_id} tokens diverge from the generate "
                        "oracle — numeric backend is broken"
                    )
            verified = True
        delivered = batch * decode_len
        points.append(
            {
                "batch": batch,
                "requests": batch,
                "prefill_len": prefill_len,
                "decode_len": decode_len,
                "decode_tokens": delivered,
                "wall_s": wall_s,
                "tokens_per_s": delivered / wall_s if wall_s > 0 else 0.0,
            }
        )

    cfg = SERVING_BENCH_CONFIG
    return {
        "schema": SERVING_BENCH_SCHEMA,
        "quick": quick,
        "scheme": scheme.name,
        "batched": batched,
        "verified_bit_identical": verified,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "model": {
            "name": cfg.name,
            "dim": cfg.dim,
            "n_layers": cfg.n_layers,
            "n_heads": cfg.n_heads,
            "n_kv_heads": cfg.n_kv_heads,
            "ffn_dim": cfg.ffn_dim,
        },
        "batches": points,
    }


def check_serving_regression(
    current: dict,
    baseline: dict,
    *,
    max_slowdown: float = 3.0,
    min_batch_speedup: float = 2.0,
) -> list[str]:
    """Gate throughput against the committed baseline.

    Two gates, both with generous slack because wall-clock on shared CI is
    noisy:

    - the largest-batch throughput may not regress more than
      ``max_slowdown`` x against the baseline's largest-batch point;
    - fused batched decode must deliver at least ``min_batch_speedup`` x the
      *baseline's batch-1* throughput at batch 8 — the headline win of
      cross-request batching.  Skipped when the current run measured the
      sequential path (``batched=False``) or either payload lacks the
      needed batch points.

    Returns human-readable failures (empty = pass).
    """
    problems: list[str] = []
    try:
        base_pt = max(baseline["batches"], key=lambda p: p["batch"])
        cur_pt = max(current["batches"], key=lambda p: p["batch"])
        base = float(base_pt["tokens_per_s"])
        cur = float(cur_pt["tokens_per_s"])
        base_by_batch = {
            int(p["batch"]): float(p["tokens_per_s"]) for p in baseline["batches"]
        }
        cur_by_batch = {
            int(p["batch"]): float(p["tokens_per_s"]) for p in current["batches"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed serving bench payload: {exc!r}"]
    if not current.get("verified_bit_identical"):
        problems.append("current run skipped oracle verification")
    if cur * max_slowdown < base:
        problems.append(
            f"batched decode throughput regressed >{max_slowdown:g}x at "
            f"batch {cur_pt['batch']}: {cur:.1f} tokens/s vs baseline "
            f"{base:.1f} tokens/s"
        )
    if (
        current.get("batched", True)
        and 8 in cur_by_batch
        and 1 in base_by_batch
    ):
        cur8, base1 = cur_by_batch[8], base_by_batch[1]
        if cur8 < min_batch_speedup * base1:
            problems.append(
                f"fused batched decode too slow: {cur8:.1f} tokens/s at "
                f"batch 8 is under {min_batch_speedup:g}x the baseline "
                f"batch-1 throughput ({base1:.1f} tokens/s)"
            )
    return problems


def write_serving_bench_json(payload: dict, dest: "str | Path") -> None:
    from repro.bench.artifacts import atomic_write_text

    atomic_write_text(dest, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_serving_bench_json(src: "str | Path") -> dict:
    payload = json.loads(Path(src).read_text())
    if payload.get("schema") != SERVING_BENCH_SCHEMA:
        raise ValueError(
            f"unexpected serving bench schema {payload.get('schema')!r} "
            f"in {src}"
        )
    return payload


def format_serving_rows(payload: dict) -> list[list]:
    """Table rows (batch, decode tokens, wall s, tokens/s) for the CLI."""
    return [
        [
            p["batch"],
            p["decode_tokens"],
            f"{p['wall_s']:.3f}",
            f"{p['tokens_per_s']:.1f}",
        ]
        for p in payload["batches"]
    ]
