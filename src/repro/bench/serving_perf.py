"""Batched-decode microbenchmark for the numeric serving backend.

``repro bench --serving`` drives the whole numeric serving stack — the
continuous-batching engine, paged KV store, quantized KV codec, and
:class:`~repro.core.linear.AtomLinear` layers — and measures delivered
decode throughput (tokens/s) as the batch size grows from 1 to 16.  The
point of the curve is the serving thesis itself: per-request decode work is
fixed, so tokens/s should scale with the number of concurrently decoding
requests until the scheduler (not the model) is the bottleneck.

The benchmark model is a random-weight GQA config quantized with the full
Atom recipe (no zoo cache / training involved), so the run exercises
quantized GEMMs and 4-bit KV pages exactly as a real numeric serving run
does.  One batch point is additionally verified bit-identical against the
per-request :meth:`~repro.models.llama.LlamaModel.generate` oracle, and the
payload records that fact — a perf baseline that silently stopped computing
the right tokens would be worthless.

``BENCH_serving_numeric.json`` (committed under ``benchmarks/perf/``) is the
regression baseline; ``check_serving_regression`` gates against the
largest-batch throughput with a generous slack factor because wall-clock on
shared CI is noisy.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import AtomConfig, AtomQuantizer
from repro.models.config import ModelConfig

__all__ = [
    "SERVING_BENCH_SCHEMA",
    "PREFIX_BENCH_SCHEMA",
    "SERVING_BENCH_CONFIG",
    "build_serving_bench_model",
    "run_serving_bench",
    "run_prefix_cache_bench",
    "check_serving_regression",
    "check_prefix_cache_regression",
    "write_serving_bench_json",
    "read_serving_bench_json",
    "read_prefix_bench_json",
    "format_serving_rows",
    "format_prefix_rows",
]

SERVING_BENCH_SCHEMA = "atom-repro/bench-serving-numeric/v1"
PREFIX_BENCH_SCHEMA = "atom-repro/bench-prefix-cache/v1"

#: Small dense GQA model (4 query heads per KV head) — large enough that the
#: grouped attention path and multi-page KV sequences are exercised, small
#: enough that the full batch sweep stays CI-friendly.
SERVING_BENCH_CONFIG = ModelConfig(
    "serving-bench",
    dim=128,
    n_layers=2,
    n_heads=8,
    n_kv_heads=2,
    ffn_dim=256,
    max_seq_len=512,
    group_size=8,
    seed=4321,
)


def build_serving_bench_model(seed: int = 0):
    """Random-weight :data:`SERVING_BENCH_CONFIG` model, Atom-quantized."""
    from repro.bench.perf import build_bench_model

    model = build_bench_model(SERVING_BENCH_CONFIG, seed=seed)
    rng = np.random.default_rng(seed + 1)
    calib = rng.integers(0, SERVING_BENCH_CONFIG.vocab_size, size=(4, 32))
    return AtomQuantizer(AtomConfig.paper_default()).quantize(
        model, calib_tokens=calib
    )


def _requests(batch: int, prefill_len: int, decode_len: int):
    from repro.data.sharegpt import Request

    return [Request(i, prefill_len, decode_len) for i in range(batch)]


def run_serving_bench(
    *, quick: bool = False, seed: int = 0, batched: bool = True
) -> dict:
    """Measure numeric-backend decode throughput across batch sizes.

    Returns the ``BENCH_serving_numeric.json`` payload.  Each batch point
    runs a fresh engine + backend over ``batch`` identical-length requests
    under reserve admission, and reports delivered decode tokens per
    wall-clock second.  With ``batched=True`` (the default) decode runs the
    fused cross-request path (one ``forward_batch`` per engine step);
    ``batched=False`` measures the sequential per-request loop for
    comparison.  The smallest AND largest batch points are verified
    bit-identical against the per-request ``generate`` oracle — the large
    point exercises the fused path at real batch widths.
    """
    from repro.serving import SCHEMES, NumericBackend

    batch_sizes = (1, 8) if quick else (1, 4, 8, 16)
    prefill_len, decode_len = (16, 8) if quick else (24, 32)
    model = build_serving_bench_model(seed=seed)
    scheme = SCHEMES["Atom-W4A4"]

    points = []
    verified = False
    verify_at = {batch_sizes[0], batch_sizes[-1]}
    for batch in batch_sizes:
        engine = NumericBackend.engine_for(
            model,
            scheme,
            max_batch=batch,
            admission="reserve",
            seed=seed,
            batched=batched,
        )
        backend = engine.backend
        reqs = _requests(batch, prefill_len, decode_len)
        t0 = time.perf_counter()
        result = engine.run(reqs)
        wall_s = time.perf_counter() - t0
        if result.completed_requests != batch:
            raise RuntimeError(
                f"serving bench batch={batch}: only "
                f"{result.completed_requests}/{batch} requests finished"
            )
        if batch in verify_at:
            for r in reqs:
                got = backend.generated_tokens(r.request_id)
                want = backend.runner.oracle_generate(
                    r.request_id, r.prefill_len, r.decode_len
                )
                if not np.array_equal(got, want):
                    raise RuntimeError(
                        f"serving bench: batch={batch} request "
                        f"{r.request_id} tokens diverge from the generate "
                        "oracle — numeric backend is broken"
                    )
            verified = True
        delivered = batch * decode_len
        points.append(
            {
                "batch": batch,
                "requests": batch,
                "prefill_len": prefill_len,
                "decode_len": decode_len,
                "decode_tokens": delivered,
                "wall_s": wall_s,
                "tokens_per_s": delivered / wall_s if wall_s > 0 else 0.0,
            }
        )

    cfg = SERVING_BENCH_CONFIG
    return {
        "schema": SERVING_BENCH_SCHEMA,
        "quick": quick,
        "scheme": scheme.name,
        "batched": batched,
        "verified_bit_identical": verified,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "model": {
            "name": cfg.name,
            "dim": cfg.dim,
            "n_layers": cfg.n_layers,
            "n_heads": cfg.n_heads,
            "n_kv_heads": cfg.n_kv_heads,
            "ffn_dim": cfg.ffn_dim,
        },
        "batches": points,
    }


def _conversation_requests(
    n_conversations: int, turns: int, prompt_len: int, decode_len: int
):
    """Multi-round conversation workload ordered so later turns can hit.

    Request ids follow the ShareGPT ``TURN_STRIDE`` addressing
    (``cid * 64 + turn``) that groups turns of one conversation onto one
    token stream; each turn's prompt is the previous turn's full history
    plus a fresh ``prompt_len``-token message.  Requests are sorted by turn
    so every conversation's turn ``k`` retires (and interns its pages)
    before its turn ``k + 1`` is admitted.
    """
    from repro.data.sharegpt import Request

    reqs = []
    for cid in range(n_conversations):
        history = 0
        for turn in range(turns):
            prefill = history + prompt_len
            reqs.append(Request(cid * 64 + turn, prefill, decode_len))
            history = prefill + decode_len
    reqs.sort(key=lambda r: (r.request_id % 64, r.request_id // 64))
    return reqs


def run_prefix_cache_bench(*, quick: bool = False, seed: int = 0) -> dict:
    """Warm-vs-cold sweep: the same conversations with and without the cache.

    Runs one multi-round conversation workload twice through the numeric
    backend — cold (no prefix cache: every turn re-prefills its whole
    history) and warm (radix-tree prefix cache: turn ``k + 1`` resumes from
    turn ``k``'s interned pages).  Both runs serve identical conversation
    prompts; every finished request in *both* runs is verified bit-identical
    against the per-request ``generate`` oracle, which is the whole point:
    the warm run skips prefill work without changing a single token.

    Returns the ``BENCH_prefix_cache.json`` payload.
    """
    from repro.serving import SCHEMES, NumericBackend, PrefixCache

    # Prompts are long enough that the skipped prefill FLOPs dominate the
    # cache's Python-side bookkeeping — warm must beat cold on wall-clock
    # (the CI gate), not just on positions computed.
    n_conv, turns = (2, 3) if quick else (3, 3)
    prompt_len, decode_len = (64, 8) if quick else (96, 12)
    model = build_serving_bench_model(seed=seed)
    scheme = SCHEMES["Atom-W4A4"]
    reqs = _conversation_requests(n_conv, turns, prompt_len, decode_len)

    runs = {}
    tokens = {}
    for mode in ("cold", "warm"):
        cache = PrefixCache(seed=seed) if mode == "warm" else None
        engine = NumericBackend.engine_for(
            model,
            scheme,
            max_batch=n_conv,
            admission="reserve",
            seed=seed,
            prompts="conversation",
            prefix_cache=cache,
        )
        backend = engine.backend
        t0 = time.perf_counter()
        result = engine.run(reqs)
        wall_s = time.perf_counter() - t0
        if result.completed_requests != len(reqs):
            raise RuntimeError(
                f"prefix cache bench ({mode}): only "
                f"{result.completed_requests}/{len(reqs)} requests finished"
            )
        for r in reqs:
            got = backend.generated_tokens(r.request_id)
            want = backend.runner.oracle_generate(
                r.request_id, r.prefill_len, r.decode_len
            )
            if not np.array_equal(got, want):
                raise RuntimeError(
                    f"prefix cache bench ({mode}): request {r.request_id} "
                    "tokens diverge from the generate oracle"
                )
        tokens[mode] = {
            r.request_id: np.asarray(
                backend.generated_tokens(r.request_id)
            ).tolist()
            for r in reqs
        }
        delivered = len(reqs) * decode_len
        point = {
            "decode_tokens": delivered,
            "wall_s": wall_s,
            "tokens_per_s": delivered / wall_s if wall_s > 0 else 0.0,
        }
        if cache is not None:
            pc = result.prefix_cache
            point.update(
                hits=pc["hits"],
                lookups=pc["lookups"],
                hit_rate=pc["hit_rate"],
                kv_tokens_reused=pc["kv_tokens"],
                shared_pages=pc["shared_pages"],
                evicted_pages=pc["evicted_pages"],
            )
        runs[mode] = point
    if tokens["warm"] != tokens["cold"]:
        raise RuntimeError(
            "prefix cache bench: warm tokens differ from cold tokens"
        )

    cfg = SERVING_BENCH_CONFIG
    return {
        "schema": PREFIX_BENCH_SCHEMA,
        "quick": quick,
        "scheme": scheme.name,
        "conversations": n_conv,
        "turns": turns,
        "prompt_len": prompt_len,
        "decode_len": decode_len,
        "verified_bit_identical": True,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "model": {
            "name": cfg.name,
            "dim": cfg.dim,
            "n_layers": cfg.n_layers,
            "n_heads": cfg.n_heads,
            "n_kv_heads": cfg.n_kv_heads,
            "ffn_dim": cfg.ffn_dim,
        },
        "runs": runs,
        "warm_speedup": (
            runs["cold"]["wall_s"] / runs["warm"]["wall_s"]
            if runs["warm"]["wall_s"] > 0
            else 0.0
        ),
    }


def check_serving_regression(
    current: dict,
    baseline: dict,
    *,
    max_slowdown: float = 3.0,
    min_batch_speedup: float = 2.0,
) -> list[str]:
    """Gate throughput against the committed baseline.

    Two gates, both with generous slack because wall-clock on shared CI is
    noisy:

    - the largest-batch throughput may not regress more than
      ``max_slowdown`` x against the baseline's largest-batch point;
    - fused batched decode must deliver at least ``min_batch_speedup`` x the
      *baseline's batch-1* throughput at batch 8 — the headline win of
      cross-request batching.  Skipped when the current run measured the
      sequential path (``batched=False``) or either payload lacks the
      needed batch points.

    Returns human-readable failures (empty = pass).
    """
    problems: list[str] = []
    try:
        base_pt = max(baseline["batches"], key=lambda p: p["batch"])
        cur_pt = max(current["batches"], key=lambda p: p["batch"])
        base = float(base_pt["tokens_per_s"])
        cur = float(cur_pt["tokens_per_s"])
        base_by_batch = {
            int(p["batch"]): float(p["tokens_per_s"]) for p in baseline["batches"]
        }
        cur_by_batch = {
            int(p["batch"]): float(p["tokens_per_s"]) for p in current["batches"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed serving bench payload: {exc!r}"]
    if not current.get("verified_bit_identical"):
        problems.append("current run skipped oracle verification")
    if cur * max_slowdown < base:
        problems.append(
            f"batched decode throughput regressed >{max_slowdown:g}x at "
            f"batch {cur_pt['batch']}: {cur:.1f} tokens/s vs baseline "
            f"{base:.1f} tokens/s"
        )
    if (
        current.get("batched", True)
        and 8 in cur_by_batch
        and 1 in base_by_batch
    ):
        cur8, base1 = cur_by_batch[8], base_by_batch[1]
        if cur8 < min_batch_speedup * base1:
            problems.append(
                f"fused batched decode too slow: {cur8:.1f} tokens/s at "
                f"batch 8 is under {min_batch_speedup:g}x the baseline "
                f"batch-1 throughput ({base1:.1f} tokens/s)"
            )
    return problems


def check_prefix_cache_regression(
    current: dict,
    baseline: dict,
    *,
    max_slowdown: float = 3.0,
    min_warm_ratio: float = 1.0,
) -> list[str]:
    """Gate the warm-vs-cold sweep against the committed baseline.

    Three gates:

    - the warm run must be verified bit-identical to the oracle (and to the
      cold run — ``run_prefix_cache_bench`` raises otherwise);
    - warm throughput must be at least ``min_warm_ratio`` x the *current*
      run's cold throughput — the cache's entire job is to do strictly less
      prefill work, so warm < cold means it is adding overhead, not saving
      it;
    - warm throughput may not regress more than ``max_slowdown`` x against
      the baseline's warm point (generous slack: shared-CI wall-clock);
    - the hit rate must reach the workload's structural expectation —
      every turn after a conversation's first is a hit, so
      ``(turns - 1) / turns`` of lookups — against the current payload's
      own shape (quick and full runs differ in size but not in this ratio).

    Returns human-readable failures (empty = pass).
    """
    problems: list[str] = []
    try:
        warm = current["runs"]["warm"]
        cold = current["runs"]["cold"]
        base_warm = float(baseline["runs"]["warm"]["tokens_per_s"])
        turns = int(current["turns"])
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed prefix cache bench payload: {exc!r}"]
    if not current.get("verified_bit_identical"):
        problems.append("current run skipped oracle verification")
    warm_tps = float(warm["tokens_per_s"])
    cold_tps = float(cold["tokens_per_s"])
    if warm_tps < min_warm_ratio * cold_tps:
        problems.append(
            f"warm run slower than cold: {warm_tps:.1f} tokens/s with the "
            f"prefix cache vs {cold_tps:.1f} tokens/s without "
            f"(required ratio {min_warm_ratio:g})"
        )
    if warm_tps * max_slowdown < base_warm:
        problems.append(
            f"warm throughput regressed >{max_slowdown:g}x: "
            f"{warm_tps:.1f} tokens/s vs baseline {base_warm:.1f} tokens/s"
        )
    expect_rate = (turns - 1) / turns if turns > 0 else 0.0
    if float(warm.get("hit_rate", 0.0)) < expect_rate - 1e-9:
        problems.append(
            f"hit rate {float(warm.get('hit_rate', 0.0)):.1%} below the "
            f"structural expectation {expect_rate:.1%} "
            f"({turns - 1} of every {turns} turns should hit)"
        )
    return problems


def write_serving_bench_json(payload: dict, dest: "str | Path") -> None:
    from repro.bench.artifacts import atomic_write_text

    atomic_write_text(dest, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_serving_bench_json(src: "str | Path") -> dict:
    payload = json.loads(Path(src).read_text())
    if payload.get("schema") != SERVING_BENCH_SCHEMA:
        raise ValueError(
            f"unexpected serving bench schema {payload.get('schema')!r} "
            f"in {src}"
        )
    return payload


def read_prefix_bench_json(src: "str | Path") -> dict:
    payload = json.loads(Path(src).read_text())
    if payload.get("schema") != PREFIX_BENCH_SCHEMA:
        raise ValueError(
            f"unexpected prefix cache bench schema "
            f"{payload.get('schema')!r} in {src}"
        )
    return payload


def format_prefix_rows(payload: dict) -> list[list]:
    """Table rows (run, decode tokens, wall s, tokens/s, hit rate)."""
    rows = []
    for mode in ("cold", "warm"):
        p = payload["runs"][mode]
        rows.append(
            [
                mode,
                p["decode_tokens"],
                f"{p['wall_s']:.3f}",
                f"{p['tokens_per_s']:.1f}",
                f"{p['hit_rate']:.0%}" if "hit_rate" in p else "-",
            ]
        )
    return rows


def format_serving_rows(payload: dict) -> list[list]:
    """Table rows (batch, decode tokens, wall s, tokens/s) for the CLI."""
    return [
        [
            p["batch"],
            p["decode_tokens"],
            f"{p['wall_s']:.3f}",
            f"{p['tokens_per_s']:.1f}",
        ]
        for p in payload["batches"]
    ]
