"""ASCII renderings of the paper's figures (line series and bar charts).

The benchmark harness emits figure *data* as aligned numeric tables plus a
coarse ASCII visualization, so the regenerated figures are inspectable in a
terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_series", "ascii_bars"]

_MARKS = "ox+*#@%&"


def ascii_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    logy: bool = False,
) -> str:
    """Scatter multiple named series on one character grid."""
    import math

    names = list(series)
    for name in names:
        if len(series[name]) != len(xs):
            raise ValueError(f"series {name!r} length != len(xs)")
    ys_all = [
        (math.log10(max(v, 1e-12)) if logy else v)
        for name in names
        for v in series[name]
    ]
    if not ys_all:
        raise ValueError("no data")
    lo, hi = min(ys_all), max(ys_all)
    span = hi - lo or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in zip(xs, series[name]):
            yy = math.log10(max(y, 1e-12)) if logy else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((yy - lo) / span * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    top = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines.append(f"y: [{bot}, {top}]" + ("  (log scale)" if logy else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_lo:g}, {x_hi:g}]")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 48,
) -> str:
    """Horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        raise ValueError("no data")
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        bar = "#" * max(int(v / peak * width), 1 if v > 0 else 0)
        lines.append(f"{str(label).ljust(label_w)} | {bar} {v:.4g}")
    return "\n".join(lines)
