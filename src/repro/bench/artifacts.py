"""Benchmark artifact output: regenerated tables/figures land on disk.

Robustness contract (the artifact-integrity half of the offline failure
model, see DESIGN.md):

- Every write is **atomic** — tmp file in the destination directory,
  flush+fsync, ``os.replace`` — so an interrupted benchmark never leaves a
  torn or empty artifact behind.
- Failures to create or write the results directory raise a typed
  :class:`ArtifactError` instead of surfacing as raw ``mkdir``/IO
  tracebacks.
- ``save_artifact(..., manifest=True)`` additionally records the artifact in
  ``MANIFEST.json`` (name, SHA-256 checksum, size, schema version, config
  fingerprint), which :func:`verify_artifacts` — and the ``repro doctor``
  CLI — replays to detect on-disk corruption or truncation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "ArtifactError",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "results_dir",
    "save_artifact",
    "atomic_write_text",
    "read_manifest",
    "verify_artifacts",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_SCHEMA = "atom-repro/artifact-manifest/v1"


class ArtifactError(RuntimeError):
    """A benchmark artifact could not be written or validated."""


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Write ``text`` to ``path`` atomically; raise :class:`ArtifactError`."""
    path = Path(path)
    try:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    except OSError as exc:
        raise ArtifactError(f"cannot write {path}: {exc}") from exc
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise ArtifactError(f"cannot write {path}: {exc}") from exc
        raise
    return path


def results_dir() -> Path:
    """Directory benchmark outputs are written to.

    ``$ATOM_REPRO_RESULTS`` overrides; default ``benchmarks/results`` under
    the repository root (falls back to CWD when run from elsewhere).
    Raises :class:`ArtifactError` when the directory cannot be created.
    """
    env = os.environ.get("ATOM_REPRO_RESULTS")
    if env:
        base = Path(env)
    else:
        here = Path(__file__).resolve()
        repo = next(
            (p for p in here.parents if (p / "pyproject.toml").exists()),
            Path.cwd(),
        )
        base = repo / "benchmarks" / "results"
    try:
        base.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ArtifactError(f"cannot create results dir {base}: {exc}") from exc
    return base


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def read_manifest(directory: "str | Path") -> dict:
    """Load a results-dir manifest ({} when absent); typed error on damage."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return {"schema": MANIFEST_SCHEMA, "artifacts": {}}
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable manifest {path}: {exc}") from exc
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ArtifactError(
            f"{path}: manifest schema {manifest.get('schema')!r} "
            f"!= {MANIFEST_SCHEMA!r}"
        )
    return manifest


def _update_manifest(
    directory: Path, name: str, entry: dict
) -> None:
    manifest = read_manifest(directory)
    manifest["schema"] = MANIFEST_SCHEMA
    manifest.setdefault("artifacts", {})[name] = entry
    atomic_write_text(
        directory / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )


def save_artifact(
    name: str,
    text: str,
    *,
    manifest: bool = False,
    schema: str | None = None,
    fingerprint: str | None = None,
) -> Path:
    """Write one report file atomically and return its path (echoes to stdout).

    ``manifest=True`` also records the artifact (checksum, size, optional
    ``schema`` version and config ``fingerprint``) in the results-dir
    ``MANIFEST.json`` so ``repro doctor`` can verify it later.
    """
    base = results_dir()
    body = text + "\n"
    path = atomic_write_text(base / name, body)
    if manifest:
        entry: dict = {
            "checksum": _sha256_text(body),
            "bytes": len(body.encode()),
        }
        if schema is not None:
            entry["schema"] = schema
        if fingerprint is not None:
            entry["fingerprint"] = fingerprint
        _update_manifest(base, name, entry)
    print(f"\n{text}\n[saved to {path}]")
    return path


def verify_artifacts(directory: "str | Path") -> list[str]:
    """Check every manifest entry against the files on disk.

    Returns a list of problems (empty == healthy).  Files without a manifest
    entry are ignored; entries whose file is missing, truncated, or whose
    checksum mismatches are reported.
    """
    directory = Path(directory)
    problems: list[str] = []
    try:
        manifest = read_manifest(directory)
    except ArtifactError as exc:
        return [str(exc)]
    artifacts = manifest.get("artifacts", {})
    if not artifacts:
        return [f"{directory}: no artifacts recorded in manifest"]
    for name, entry in sorted(artifacts.items()):
        path = directory / name
        if not path.exists():
            problems.append(f"{path}: recorded in manifest but missing")
            continue
        try:
            body = path.read_text()
        except OSError as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        if "bytes" in entry and len(body.encode()) != entry["bytes"]:
            problems.append(
                f"{path}: size {len(body.encode())} != manifest {entry['bytes']} "
                "(truncated or overwritten)"
            )
            continue
        if _sha256_text(body) != entry.get("checksum"):
            problems.append(f"{path}: checksum mismatch (corrupt artifact)")
    return problems
