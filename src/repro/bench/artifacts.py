"""Benchmark artifact output: regenerated tables/figures land on disk."""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["results_dir", "save_artifact"]


def results_dir() -> Path:
    """Directory benchmark outputs are written to.

    ``$ATOM_REPRO_RESULTS`` overrides; default ``benchmarks/results`` under
    the repository root (falls back to CWD when run from elsewhere).
    """
    env = os.environ.get("ATOM_REPRO_RESULTS")
    if env:
        base = Path(env)
    else:
        here = Path(__file__).resolve()
        repo = next(
            (p for p in here.parents if (p / "pyproject.toml").exists()),
            Path.cwd(),
        )
        base = repo / "benchmarks" / "results"
    base.mkdir(parents=True, exist_ok=True)
    return base


def save_artifact(name: str, text: str) -> Path:
    """Write one report file and return its path (also echoes to stdout)."""
    path = results_dir() / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
