"""Reporting helpers shared by the benchmark harness (tables + ASCII figures)."""

from repro.bench.tables import format_table
from repro.bench.figures import ascii_bars, ascii_series
from repro.bench.artifacts import save_artifact, results_dir

__all__ = ["ascii_bars", "ascii_series", "format_table", "results_dir", "save_artifact"]
