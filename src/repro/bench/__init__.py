"""Reporting helpers shared by the benchmark harness (tables + ASCII figures)."""

from repro.bench.tables import format_table
from repro.bench.figures import ascii_bars, ascii_series
from repro.bench.artifacts import (
    ArtifactError,
    atomic_write_text,
    read_manifest,
    results_dir,
    save_artifact,
    verify_artifacts,
)

__all__ = [
    "ArtifactError",
    "ascii_bars",
    "ascii_series",
    "atomic_write_text",
    "format_table",
    "read_manifest",
    "results_dir",
    "save_artifact",
    "verify_artifacts",
]
