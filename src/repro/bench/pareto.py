"""Accuracy-vs-throughput Pareto sweep over the scheme registry.

``repro bench --pareto`` runs every numeric-executable scheme in
:data:`repro.serving.schemes.SCHEMES` through all three layers the registry
unifies:

- **accuracy** — quantize a trained zoo model with the scheme's recipe and
  measure perplexity (:mod:`repro.eval.perplexity`) on held-out synthwiki;
- **modeled throughput** — serve a ShareGPT workload on the full-size
  Llama-7B roofline simulation (deterministic virtual time);
- **measured throughput** — serve real requests through the numeric
  backend, every finished request verified bit-identical against the
  per-request ``generate`` oracle;
- **memory** — full-size weight footprint and KV bytes/token from the
  scheme's declared precisions.

The committed ``benchmarks/perf/BENCH_pareto.json`` is the regression
baseline.  ``check_pareto_regression`` gates the *structure* of the
frontier, not raw wall-clock: Atom-W4A4 must dominate W8A8 on modeled
throughput and W4A16 on memory (weights no larger, KV strictly smaller) —
the paper's design-space claim — plus FP16 must stay the accuracy anchor
and per-scheme numeric throughput may not regress beyond a generous slack.
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "PARETO_BENCH_SCHEMA",
    "run_pareto_bench",
    "check_pareto_regression",
    "pareto_front",
    "write_pareto_bench_json",
    "read_pareto_bench_json",
    "format_pareto_rows",
]

PARETO_BENCH_SCHEMA = "atom-repro/bench-pareto/v1"

#: Zoo analog executed numerically -> full-size spec used for the roofline
#: axis (same mapping the ``serve`` subcommand uses).
_ROOFLINE_SPEC_FOR = {
    "llama-7b-sim": "llama-7b",
    "llama-13b-sim": "llama-13b",
    "llama2-70b-sim": "llama-70b",
}


def _roofline_tokens_per_s(scheme, spec_name: str, *, requests: int, seed: int):
    from repro.data.sharegpt import ShareGPTWorkload
    from repro.serving import ServingEngine
    from repro.serving.models import LLAMA_7B, LLAMA_13B, LLAMA_70B

    spec = {
        "llama-7b": LLAMA_7B,
        "llama-13b": LLAMA_13B,
        "llama-70b": LLAMA_70B,
    }[spec_name]
    reqs = ShareGPTWorkload(seed=seed, max_len=2048).sample_requests(requests)
    engine = ServingEngine(spec, scheme, max_batch=32)
    result = engine.run(reqs)
    return spec, result.throughput_tokens_per_s


def run_pareto_bench(
    *,
    quick: bool = False,
    seed: int = 0,
    model_name: str = "llama-7b-sim",
    scheme_names: "list[str] | None" = None,
) -> dict:
    """Sweep registered schemes; returns the ``BENCH_pareto.json`` payload.

    ``scheme_names=None`` sweeps every numeric-executable registered
    scheme.  One calibration batch is shared across all recipes so the
    sweep is deterministic and scheme-comparable.
    """
    from repro.core.outliers import sample_calibration_tokens
    from repro.data.sharegpt import Request
    from repro.eval import perplexity
    from repro.models.zoo import load_model
    from repro.serving import NumericBackend
    from repro.serving.schemes import SCHEMES, numeric_scheme_names

    if scheme_names is None:
        scheme_names = numeric_scheme_names()
    unknown = [s for s in scheme_names if s not in SCHEMES]
    if unknown:
        raise ValueError(f"unknown schemes: {', '.join(unknown)}")

    n_calib, calib_len = (8, 32) if quick else (32, 64)
    eval_chars = 2048 if quick else 4096
    roofline_requests = 16 if quick else 64
    batch, prefill_len, decode_len = (4, 12, 6) if quick else (4, 16, 12)

    model = load_model(model_name)
    spec_name = _ROOFLINE_SPEC_FOR[model_name]
    calib = sample_calibration_tokens(n_calib, calib_len, seed=seed + 42)

    rows = []
    spec = None
    for name in scheme_names:
        scheme = SCHEMES[name]
        served = scheme.quantize(model, calib_tokens=calib)
        ppl = float(perplexity(served, "synthwiki", eval_chars=eval_chars))

        spec, roofline_tps = _roofline_tokens_per_s(
            scheme, spec_name, requests=roofline_requests, seed=seed
        )

        engine = NumericBackend.engine_for(
            served, scheme, max_batch=batch, admission="reserve", seed=seed
        )
        backend = engine.backend
        reqs = [Request(i, prefill_len, decode_len) for i in range(batch)]
        t0 = time.perf_counter()
        result = engine.run(reqs)
        wall_s = time.perf_counter() - t0
        if result.completed_requests != batch:
            raise RuntimeError(
                f"pareto bench {name}: only "
                f"{result.completed_requests}/{batch} requests finished"
            )
        for r in reqs:
            got = backend.generated_tokens(r.request_id)
            want = backend.runner.oracle_generate(
                r.request_id, r.prefill_len, r.decode_len
            )
            if not np.array_equal(got, want):
                raise RuntimeError(
                    f"pareto bench {name}: request {r.request_id} tokens "
                    "diverge from the generate oracle"
                )
        delivered = batch * decode_len
        rows.append(
            {
                "scheme": name,
                "w_bits": scheme.w_bits,
                "a_bits": scheme.a_bits,
                "kv_bits": scheme.kv_bits,
                "avg_weight_bits": scheme.weight_bytes_per_param * 8.0,
                "ppl": ppl,
                "roofline_tokens_per_s": float(roofline_tps),
                "numeric_tokens_per_s": (
                    delivered / wall_s if wall_s > 0 else 0.0
                ),
                "numeric_wall_s": wall_s,
                "weight_gb": spec.n_params()
                * scheme.weight_bytes_per_param
                / 2**30,
                "kv_bytes_per_token": spec.kv_bytes_per_token(scheme.kv_bits),
                "verified_bit_identical": True,
            }
        )

    return {
        "schema": PARETO_BENCH_SCHEMA,
        "quick": quick,
        "model": {"zoo": model_name, "roofline_spec": spec.name},
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "schemes": rows,
        "pareto_front": pareto_front(rows),
    }


def pareto_front(rows: list[dict]) -> list[str]:
    """Schemes not dominated on (lower ppl, higher modeled throughput)."""
    front = []
    for a in rows:
        dominated = any(
            b["ppl"] <= a["ppl"]
            and b["roofline_tokens_per_s"] >= a["roofline_tokens_per_s"]
            and (
                b["ppl"] < a["ppl"]
                or b["roofline_tokens_per_s"] > a["roofline_tokens_per_s"]
            )
            for b in rows
        )
        if not dominated:
            front.append(a["scheme"])
    return front


def check_pareto_regression(
    current: dict,
    baseline: dict,
    *,
    max_slowdown: float = 3.0,
    ppl_headroom: float = 1.02,
) -> list[str]:
    """Gate the sweep's structure against the committed baseline.

    Wall-clock enters only through the per-scheme numeric throughput gate
    (generous ``max_slowdown`` slack: shared CI is noisy); everything else
    is structural and must hold exactly:

    - every scheme verified bit-identical against the generate oracle;
    - every baseline scheme still present (schemes may be added, not lost);
    - Atom-W4A4 dominates W8A8 on modeled throughput, and W4A16 on memory
      (weights no larger, KV strictly smaller);
    - all perplexities finite, with FP16 the accuracy anchor (no quantized
      scheme beats it beyond ``ppl_headroom`` noise).

    Returns human-readable failures (empty = pass).
    """
    problems: list[str] = []
    try:
        cur = {r["scheme"]: r for r in current["schemes"]}
        base = {r["scheme"]: r for r in baseline["schemes"]}
        for r in cur.values():
            float(r["ppl"])
            float(r["roofline_tokens_per_s"])
            float(r["numeric_tokens_per_s"])
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed pareto bench payload: {exc!r}"]

    for name, r in cur.items():
        if not r.get("verified_bit_identical"):
            problems.append(f"{name}: run skipped oracle verification")
        if not math.isfinite(float(r["ppl"])):
            problems.append(f"{name}: non-finite perplexity {r['ppl']}")

    missing = sorted(set(base) - set(cur))
    if missing:
        problems.append(
            f"schemes dropped from the sweep: {', '.join(missing)}"
        )

    if {"Atom-W4A4", "W8A8", "W4A16"} <= set(cur):
        atom, w8a8, w4a16 = cur["Atom-W4A4"], cur["W8A8"], cur["W4A16"]
        if atom["roofline_tokens_per_s"] <= w8a8["roofline_tokens_per_s"]:
            problems.append(
                "Atom-W4A4 no longer dominates W8A8 on modeled throughput: "
                f"{atom['roofline_tokens_per_s']:.0f} vs "
                f"{w8a8['roofline_tokens_per_s']:.0f} tokens/s"
            )
        if atom["weight_gb"] > w4a16["weight_gb"] + 1e-9:
            problems.append(
                "Atom-W4A4 weight footprint exceeds W4A16: "
                f"{atom['weight_gb']:.2f} vs {w4a16['weight_gb']:.2f} GB"
            )
        if atom["kv_bytes_per_token"] >= w4a16["kv_bytes_per_token"]:
            problems.append(
                "Atom-W4A4 KV footprint no longer beats W4A16: "
                f"{atom['kv_bytes_per_token']:.0f} vs "
                f"{w4a16['kv_bytes_per_token']:.0f} bytes/token"
            )

    if "FP16" in cur:
        fp16_ppl = float(cur["FP16"]["ppl"])
        for name, r in cur.items():
            if name != "FP16" and float(r["ppl"]) * ppl_headroom < fp16_ppl:
                problems.append(
                    f"{name} perplexity {float(r['ppl']):.3f} beats the FP16 "
                    f"anchor {fp16_ppl:.3f} beyond noise — accuracy axis is "
                    "suspect"
                )

    for name in set(cur) & set(base):
        cur_tps = float(cur[name]["numeric_tokens_per_s"])
        base_tps = float(base[name]["numeric_tokens_per_s"])
        if cur_tps * max_slowdown < base_tps:
            problems.append(
                f"{name} numeric throughput regressed >{max_slowdown:g}x: "
                f"{cur_tps:.1f} tokens/s vs baseline {base_tps:.1f} tokens/s"
            )
    return problems


def write_pareto_bench_json(payload: dict, dest: "str | Path") -> None:
    from repro.bench.artifacts import atomic_write_text

    atomic_write_text(dest, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_pareto_bench_json(src: "str | Path") -> dict:
    payload = json.loads(Path(src).read_text())
    if payload.get("schema") != PARETO_BENCH_SCHEMA:
        raise ValueError(
            f"unexpected pareto bench schema {payload.get('schema')!r} "
            f"in {src}"
        )
    return payload


def format_pareto_rows(payload: dict) -> list[list]:
    """Table rows (scheme, bits, ppl, modeled/measured tok/s, memory)."""
    front = set(payload.get("pareto_front", ()))
    return [
        [
            r["scheme"] + (" *" if r["scheme"] in front else ""),
            f"{r['avg_weight_bits']:g}/{r['a_bits']}/{r['kv_bits']}",
            f"{r['ppl']:.3f}",
            f"{r['roofline_tokens_per_s']:.0f}",
            f"{r['numeric_tokens_per_s']:.1f}",
            f"{r['weight_gb']:.2f}",
            f"{r['kv_bytes_per_token']:.0f}",
        ]
        for r in payload["schemes"]
    ]
