"""Microbenchmarks for the quantized-inference fast path (``repro bench``).

Atom's headline claim is throughput: the fused kernels keep dequantization
off the critical path.  This harness measures the NumPy engine's analog of
that claim — the vectorized :class:`~repro.core.linear.AtomLinear` pipeline,
the preallocated KV-cache, and the O(L) sequential calibration — against the
retained reference implementations (``fast=False`` / ``fast_path=False`` /
``sequential_resume=False``), and emits the repo's committed perf baseline
``BENCH_inference.json``.

Four benchmarks:

``linear_forward``       one decode-shaped AtomLinear call (the per-token
                         hot operator)
``prefill``              full-model prompt pass, no cache
``decode``               token-by-token generation with an incremental
                         KV-cache (the serving-critical path; reported in
                         tokens/s)
``quantize_sequential``  sequential (layer-by-layer) calibration, resume
                         vs full-forward-per-layer

The default model is a purpose-built dense GQA config with random weights —
timing does not need trained checkpoints, so the harness never touches the
zoo cache.  ``quick=True`` shrinks reps/steps for the CI perf-smoke job.

When a :class:`~repro.serving.telemetry.TraceRecorder` is passed, the decode
benchmark re-runs with the recorder attached to every AtomLinear: each call
emits an ``IterationSample`` with ``t_quant`` / ``t_dense`` wall-times, so
the existing trace tooling (``summarize`` / ``read_jsonl``) attributes
quantize-vs-GEMM cost without new instrumentation.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import AtomConfig, AtomQuantizer
from repro.core.linear import AtomLinear
from repro.models.config import ModelConfig
from repro.models.llama import LlamaModel

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_MODEL_CONFIG",
    "build_bench_model",
    "quantize_bench_model",
    "set_fast",
    "run_perf_suite",
    "trace_decode",
    "check_regression",
    "write_bench_json",
    "read_bench_json",
    "format_rows",
]

BENCH_SCHEMA = "atom-repro/bench-inference/v1"

#: Default benchmark model: dense, GQA (8 query / 2 KV heads), sized so the
#: groups-per-row counts match the paper's serving regime (Llama-7B at group
#: size 128: 4096/128 = 32 groups per attention row, 11008/128 = 86 for the
#: FFN down projection; here 384/8 = 48 and 1024/8 = 128).  The repo's tiny
#: eval models have only 4 groups per row, which under-represents the
#: per-group dispatch cost the fused path eliminates.
BENCH_MODEL_CONFIG = ModelConfig(
    "perf-bench",
    dim=384,
    n_layers=4,
    n_heads=8,
    n_kv_heads=2,
    ffn_dim=1024,
    max_seq_len=512,
    group_size=8,
    seed=1234,
)


# --------------------------------------------------------------------------- #
# Model construction
# --------------------------------------------------------------------------- #
def build_bench_model(
    config: ModelConfig = BENCH_MODEL_CONFIG, seed: int = 0
) -> LlamaModel:
    """Random-weight model matching ``config`` (no training, no zoo cache)."""
    rng = np.random.default_rng(seed)
    d, f, v = config.dim, config.ffn_dim, config.vocab_size

    def mat(out: int, inp: int) -> np.ndarray:
        return (rng.normal(size=(out, inp)) / np.sqrt(inp)).astype(np.float32)

    w: dict[str, np.ndarray] = {
        "embed": mat(v, d),
        "lm_head": mat(v, d),
        "final_norm": np.ones(d, dtype=np.float32),
    }
    for i in range(config.n_layers):
        pre = f"layers.{i}"
        w[f"{pre}.attn_norm"] = np.ones(d, dtype=np.float32)
        w[f"{pre}.mlp_norm"] = np.ones(d, dtype=np.float32)
        w[f"{pre}.wq"] = mat(d, d)
        w[f"{pre}.wk"] = mat(config.kv_dim, d)
        w[f"{pre}.wv"] = mat(config.kv_dim, d)
        w[f"{pre}.wo"] = mat(d, d)
        if config.is_moe:
            w[f"{pre}.router"] = mat(config.n_experts, d)
            for e in range(config.n_experts):
                ep = f"{pre}.experts.{e}"
                w[f"{ep}.w_gate"] = mat(f, d)
                w[f"{ep}.w_up"] = mat(f, d)
                w[f"{ep}.w_down"] = mat(d, f)
        else:
            w[f"{pre}.w_gate"] = mat(f, d)
            w[f"{pre}.w_up"] = mat(f, d)
            w[f"{pre}.w_down"] = mat(d, f)
    return LlamaModel(config, w)


def quantize_bench_model(
    model: LlamaModel, *, seed: int = 1, calib_shape: tuple[int, int] = (4, 32)
) -> LlamaModel:
    """Full Atom recipe on the bench model (small synthetic calibration)."""
    rng = np.random.default_rng(seed)
    calib = rng.integers(0, model.config.vocab_size, size=calib_shape)
    cfg = AtomConfig.paper_default()
    return AtomQuantizer(cfg).quantize(model, calib_tokens=calib)


def set_fast(model: LlamaModel, enabled: bool) -> None:
    """Toggle every fast-path switch (model cache/GQA + AtomLinear GEMMs)."""
    model.fast_path = enabled
    for lin in model.linears.values():
        if isinstance(lin, AtomLinear):
            lin.fast = enabled


def _attach_telemetry(model: LlamaModel, sink) -> None:
    for lin in model.linears.values():
        if isinstance(lin, AtomLinear):
            lin.telemetry = sink


# --------------------------------------------------------------------------- #
# Timed sections
# --------------------------------------------------------------------------- #
def _best(fn, reps: int) -> float:
    """Best-of-``reps`` wall time of ``fn()`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _decode_seconds(
    model: LlamaModel, prompt: np.ndarray, steps: int, recorder=None
) -> float:
    """Greedy decode ``steps`` tokens after prefilling ``prompt``; returns
    the decode-only wall time (prefill excluded)."""
    cache: dict = {}
    logits = model.forward(prompt, cache=cache)[0, -1]
    pos = prompt.shape[1]
    t0 = time.perf_counter()
    for i in range(steps):
        if recorder is not None:
            recorder.begin_iteration(i, time.perf_counter() - t0)
        nxt = int(np.argmax(logits))
        logits = model.forward(
            np.asarray([[nxt]]), pos_offset=pos, cache=cache
        )[0, -1]
        pos += 1
    return time.perf_counter() - t0


def _before_after(bench_fn, reps: int) -> dict:
    """Run ``bench_fn(fast: bool) -> seconds`` both ways with repetitions."""
    before = min(bench_fn(False) for _ in range(reps))
    after = min(bench_fn(True) for _ in range(reps))
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after if after > 0 else float("inf"),
    }


# --------------------------------------------------------------------------- #
# Suite
# --------------------------------------------------------------------------- #
def run_perf_suite(*, quick: bool = False, seed: int = 0) -> dict:
    """Run every microbenchmark; returns the ``BENCH_inference.json`` payload."""
    cfg = BENCH_MODEL_CONFIG
    model = build_bench_model(cfg, seed=seed)
    qmodel = quantize_bench_model(model, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)

    reps = 3 if quick else 5
    lin_reps = 30 if quick else 100
    prefill_len = 48 if quick else 128
    decode_prompt = 32 if quick else 64
    decode_steps = 24 if quick else 96

    benchmarks: dict[str, dict] = {}

    # -- linear forward (decode-shaped: one token) ----------------------- #
    lin = qmodel.linears["layers.0.wq"]
    x1 = rng.normal(size=(1, cfg.dim))

    def bench_linear(fast: bool) -> float:
        lin.fast = fast
        lin(x1)  # warm-up (builds lazy reference blocks on first use)
        return _best(lambda: lin(x1), lin_reps)

    benchmarks["linear_forward"] = {
        **_before_after(bench_linear, 1),
        "tokens": 1,
        "in_features": lin.in_features,
        "out_features": lin.out_features,
    }

    # -- prefill --------------------------------------------------------- #
    prompt = rng.integers(0, cfg.vocab_size, size=(1, prefill_len))

    def bench_prefill(fast: bool) -> float:
        set_fast(qmodel, fast)
        return _best(lambda: qmodel.forward(prompt), reps)

    benchmarks["prefill"] = {
        **_before_after(bench_prefill, 1),
        "tokens": prefill_len,
    }

    # -- decode ---------------------------------------------------------- #
    dec_prompt = rng.integers(0, cfg.vocab_size, size=(1, decode_prompt))

    def bench_decode(fast: bool) -> float:
        set_fast(qmodel, fast)
        return _decode_seconds(qmodel, dec_prompt, decode_steps)

    d = _before_after(bench_decode, reps)
    d["before_tokens_per_s"] = decode_steps / d["before_s"]
    d["after_tokens_per_s"] = decode_steps / d["after_s"]
    d["prompt_tokens"] = decode_prompt
    d["decode_steps"] = decode_steps
    benchmarks["decode"] = d
    set_fast(qmodel, True)

    # -- sequential calibration ------------------------------------------ #
    # RTN weights: the GPTQ solver costs the same in both calibration modes
    # and would swamp the measurement; RTN isolates what resume actually
    # changes — the number of calibration forward executions (O(L) carried
    # hidden states vs a full forward per layer, O(L^2)).
    calib = rng.integers(0, cfg.vocab_size, size=(2, 24) if quick else (4, 48))
    seq_cfg = AtomConfig.paper_default().with_(sequential=True, use_gptq=False)

    def bench_quantize(fast: bool) -> float:
        q = AtomQuantizer(seq_cfg)
        t0 = time.perf_counter()
        q.quantize(model, calib_tokens=calib, sequential_resume=fast)
        return time.perf_counter() - t0

    benchmarks["quantize_sequential"] = {
        **_before_after(bench_quantize, 1),
        "layers": cfg.n_layers,
        "calib_tokens": int(calib.size),
    }

    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "model": {
            "name": cfg.name,
            "dim": cfg.dim,
            "n_layers": cfg.n_layers,
            "n_heads": cfg.n_heads,
            "n_kv_heads": cfg.n_kv_heads,
            "ffn_dim": cfg.ffn_dim,
            "n_outlier": cfg.n_outlier,
            "group_size": cfg.group_size,
        },
        "benchmarks": benchmarks,
    }


def trace_decode(
    recorder, *, quick: bool = False, seed: int = 0
) -> tuple[int, float]:
    """Decode with kernel-phase telemetry attached to every AtomLinear.

    Returns ``(decode_steps, decode_seconds)``; ``recorder`` accumulates one
    ``IterationSample`` (``t_quant`` / ``t_dense``) per linear call, which
    ``repro.serving.telemetry.summarize`` re-aggregates into the
    quantize-vs-GEMM time breakdown.
    """
    cfg = BENCH_MODEL_CONFIG
    qmodel = quantize_bench_model(build_bench_model(cfg, seed=seed), seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    prompt = rng.integers(0, cfg.vocab_size, size=(1, 32 if quick else 64))
    steps = 24 if quick else 96
    _attach_telemetry(qmodel, recorder)
    try:
        seconds = _decode_seconds(qmodel, prompt, steps, recorder=recorder)
    finally:
        _attach_telemetry(qmodel, None)
    return steps, seconds


# --------------------------------------------------------------------------- #
# Regression gate + I/O
# --------------------------------------------------------------------------- #
def check_regression(
    current: dict, baseline: dict, *, max_slowdown: float = 2.0
) -> list[str]:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  The gate is
    decode throughput: the serving-critical metric must not regress by more
    than ``max_slowdown``x against the committed ``BENCH_inference.json``.
    """
    problems: list[str] = []
    try:
        base = float(baseline["benchmarks"]["decode"]["after_tokens_per_s"])
        cur = float(current["benchmarks"]["decode"]["after_tokens_per_s"])
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed bench payload: {exc!r}"]
    if cur * max_slowdown < base:
        problems.append(
            f"decode throughput regressed >{max_slowdown:g}x: "
            f"{cur:.1f} tokens/s vs baseline {base:.1f} tokens/s"
        )
    return problems


def write_bench_json(payload: dict, dest: "str | Path") -> None:
    from repro.bench.artifacts import atomic_write_text

    atomic_write_text(dest, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_bench_json(src: "str | Path") -> dict:
    payload = json.loads(Path(src).read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unexpected bench schema {payload.get('schema')!r} in {src}"
        )
    return payload


def format_rows(payload: dict) -> list[list]:
    """Table rows (bench, before, after, speedup) for the CLI."""
    rows = []
    for name, b in payload["benchmarks"].items():
        rows.append(
            [
                name,
                f"{b['before_s'] * 1e3:.2f} ms",
                f"{b['after_s'] * 1e3:.2f} ms",
                f"{b['speedup']:.1f}x",
            ]
        )
    return rows
