"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1e4 or (abs(cell) < 1e-2 and cell != 0.0):
            return f"{cell:.2e}"
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
